//! Property tests for the `stabcon-fabric/1` and `/2` wire protocols:
//! every message — including the `/2` submission-plane frames and the
//! spec descriptors they carry — survives an encode→decode round trip
//! with payload strings full of quotes, backslashes, newlines, control
//! bytes, and non-ASCII, and every encoding is exactly one line, so the
//! line-oriented framing can never tear a message.
//!
//! Also pinned here: the serve side's WAN-hardening contracts. Torn or
//! interleaved Telemetry frames never corrupt a `stabcon-telemetry/1`
//! sink (the server's record validator rejects every mangled line), and
//! the [`ServeState`] lease/ingest machine keeps its counters and set
//! invariants consistent under arbitrary hostile interleavings of claims,
//! renewals, duplicate results, disconnects, and lease expiries.

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use stabcon_exp::fabric::{
    Ingest, Msg, Parked, ServeState, SpecDescriptor, FABRIC_SCHEMA, FABRIC_SCHEMA_V2,
};
use stabcon_exp::telemetry::{check_telemetry, validate_record_line};

/// Escaping stress pool: quotes, backslashes, newlines, control characters,
/// multi-byte UTF-8, JSON-significant punctuation.
const NASTY: [&str; 8] = [
    "",
    "plain worker-1",
    "he said \"hi\"",
    "back\\slash\\",
    "line\nbreak\ttab",
    "\r bell\u{1}del\u{7f}",
    "κόσμε 🦀 consensus",
    "{\"cell\": 3}, [1,2]:",
];

/// A string mixing two pool entries with a numeric tail — deterministic in
/// its inputs, covering the pool pairwise across cases.
fn nasty(a: usize, b: usize, tail: u64) -> String {
    format!("{}{}{tail}", NASTY[a % NASTY.len()], NASTY[b % NASTY.len()])
}

/// Total message kinds covered by [`build_msg`] (`/1` + `/2`).
const MSG_KINDS: usize = 22;

/// A [`SpecDescriptor`] whose override fields are present or absent by
/// bits of `y` and whose string payloads draw from the nasty pool —
/// descriptors ride inside `/2` Submit and Lease2 frames, so they share
/// the escaping stress.
fn build_descriptor(x: u64, y: u64, a: usize, b: usize) -> SpecDescriptor {
    SpecDescriptor {
        preset: nasty(a, b, x),
        name: (y & 1 != 0).then(|| nasty(b, a, y)),
        trials: (y & 2 != 0).then_some(x),
        seed: (y & 4 != 0).then_some(y),
        ns: (y & 8 != 0).then(|| nasty(a.wrapping_add(1), b, x ^ y)),
    }
}

fn build_msg(kind: usize, x: u64, y: u64, a: usize, b: usize) -> Msg {
    match kind {
        0 => Msg::Hello {
            // Both live schema tags: version negotiation rides this field.
            schema: if y & 1 != 0 { FABRIC_SCHEMA_V2 } else { FABRIC_SCHEMA }.into(),
            worker: nasty(a, b, x),
            fingerprint: format!("{y:016x}"),
        },
        1 => Msg::Welcome {
            campaign: nasty(a, b, x),
            cells: y,
        },
        2 => Msg::Reject {
            reason: nasty(a, b, x),
        },
        3 => Msg::Claim,
        4 => Msg::Lease {
            cell: x,
            lease_ms: y,
        },
        5 => Msg::Wait { retry_ms: x },
        6 => Msg::Drained,
        7 => Msg::Renew { cell: x },
        8 => Msg::Goodbye,
        9 => Msg::Telemetry {
            line: nasty(a, b, x),
        },
        10 => Msg::Result {
            cell: x,
            line: nasty(a, b, x),
            // Finite by construction: JSON has no NaN/inf, and the writer
            // maps non-finite to null (which decode rejects).
            elapsed_secs: (y % 1_000_000_000) as f64 / 1024.0,
            trials: y,
        },
        11 => Msg::Submit {
            client: nasty(b, a, x),
            spec: build_descriptor(x, y, a, b),
            fingerprint: format!("{y:016x}"),
        },
        12 => Msg::Accepted {
            job: x,
            cells: y,
            store: nasty(a, b, y),
        },
        13 => Msg::Rejected {
            code: nasty(a, b, x),
            reason: nasty(b, a, y),
        },
        14 => Msg::Status {
            job: (y & 1 != 0).then_some(x),
        },
        15 => Msg::StatusReport {
            accepting: y & 2 != 0,
            queued: x,
            running: y,
            done: x ^ y,
            cancelled: x.wrapping_add(y),
            failed: x.wrapping_mul(3),
            jobs: y.wrapping_mul(5),
        },
        16 => Msg::JobStatus {
            job: x,
            name: nasty(a, b, x),
            state: nasty(b, a, y),
            client: nasty(a, a, x ^ y),
            cells: y,
            written: x ^ y,
            trials: x.wrapping_add(y),
            elapsed_secs: (x % 1_000_000_000) as f64 / 1024.0,
        },
        17 => Msg::Cancel { job: x },
        18 => Msg::Cancelled {
            job: x,
            state: nasty(a, b, y),
        },
        19 => Msg::Lease2 {
            job: x,
            cell: y,
            lease_ms: x ^ y,
            spec: build_descriptor(y, x, b, a),
            fingerprint: format!("{x:016x}"),
        },
        20 => Msg::Result2 {
            job: y,
            cell: x,
            line: nasty(a, b, x),
            elapsed_secs: (y % 1_000_000_000) as f64 / 1024.0,
            trials: y,
        },
        _ => Msg::Renew2 { job: x, cell: y },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn encode_decode_round_trips(
        kind in 0usize..MSG_KINDS,
        x in any::<u64>(),
        y in any::<u64>(),
        a in 0usize..NASTY.len(),
        b in 0usize..NASTY.len(),
    ) {
        let msg = build_msg(kind, x, y, a, b);
        let wire = msg.encode();
        prop_assert!(!wire.contains('\n'), "framing: one line per message: {:?}", wire);
        let back = Msg::decode(&wire).expect("decode");
        prop_assert_eq!(back, msg, "wire: {}", wire);
    }

    /// Whatever bytes arrive, decode never panics — it returns a message
    /// or an error. Garbage lines are assembled from the same nasty pool
    /// plus raw numeric noise so quoting is frequently unbalanced.
    #[test]
    fn decode_never_panics(
        a in 0usize..NASTY.len(),
        b in 0usize..NASTY.len(),
        x in any::<u64>(),
        cut in 0usize..64,
    ) {
        let garbage = format!("{}{}{x}", NASTY[a], NASTY[b]);
        let _ = Msg::decode(&garbage);
        // Also every prefix-truncation of a valid message (torn line).
        let wire = build_msg((x % MSG_KINDS as u64) as usize, x, x, a, b).encode();
        let mut cut = cut.min(wire.len());
        while !wire.is_char_boundary(cut) {
            cut -= 1;
        }
        let _ = Msg::decode(&wire[..cut]);
    }
}

/// One syntactically valid `cell_profile` record, as the telemetry layer
/// emits it — the seed for the torn-frame sink property.
fn valid_cell_profile(cell: u64) -> String {
    use stabcon_obs::{Counter, Gauge, Phase};
    use stabcon_util::jsonl::JsonObj;
    let mut line = JsonObj::new()
        .str_field("record", "cell_profile")
        .u64_field("cell", cell)
        .u64_field("trials", 64)
        .fixed_field("elapsed_secs", 0.5, 3)
        .fixed_field("trials_per_sec", 128.0, 1)
        .u64_field("rounds", 4096);
    for ph in Phase::ALL {
        line = line.u64_field(&format!("phase_{}_nanos", ph.name()), 1000 + ph as u64);
    }
    for c in [
        Counter::NetRequests,
        Counter::NetDelivered,
        Counter::NetDropped,
        Counter::NetLinkDropped,
        Counter::NetPartitionDropped,
        Counter::NetForged,
    ] {
        line = line.u64_field(c.name(), 7);
    }
    line.u64_field(Gauge::NetInFlightPeak.name(), 3)
        .u64_field("trial_p50_nanos", 1 << 14)
        .u64_field("trial_p99_nanos", 1 << 16)
        .finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The serve-side sink stays schema-valid no matter what Telemetry
    /// frames arrive: a sink built from a header plus only the lines that
    /// pass `validate_record_line` — the exact filter `stabcon serve`
    /// applies — always satisfies `check_telemetry`, even when the frame
    /// stream is torn prefixes, torn suffixes, two records spliced
    /// mid-line, and raw garbage.
    #[test]
    fn torn_telemetry_frames_never_corrupt_the_sink(
        cut in 1usize..200,
        splice in 1usize..200,
        a in 0usize..NASTY.len(),
        x in any::<u64>(),
    ) {
        let good = valid_cell_profile(x % 16);
        let other = valid_cell_profile((x % 16) + 1);
        let mut cut = cut.min(good.len() - 1);
        while !good.is_char_boundary(cut) { cut -= 1; }
        let mut splice = splice.min(other.len() - 1);
        while !other.is_char_boundary(splice) { splice -= 1; }
        let candidates = [
            good.clone(),                                  // intact
            good[..cut].to_string(),                       // torn tail
            good[cut..].to_string(),                       // torn head
            format!("{}{}", &good[..cut], &other[splice..]), // mid-line splice
            format!("{}{x}", NASTY[a]),                    // garbage
            "{\"schema\": \"stabcon-telemetry/1\"}".into(), // shipped header
        ];

        // Assemble the sink the way the server does: header first, then
        // only validated records.
        let dir = std::env::temp_dir().join("stabcon-fabric-props");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join(format!("{}-torn-sink.jsonl", std::process::id()));
        let mut sink = String::from(
            "{\"schema\": \"stabcon-telemetry/1\", \"campaign\": \"p\", \
             \"threads\": 1, \"cells\": 32, \"trials_planned\": 64}\n",
        );
        let mut accepted = 0u64;
        for line in &candidates {
            if validate_record_line(line).is_ok() {
                sink.push_str(line);
                sink.push('\n');
                accepted += 1;
            }
        }
        prop_assert!(accepted >= 1, "the intact record must validate");
        std::fs::write(&path, &sink).expect("write sink");
        let check = check_telemetry(&path).expect("filtered sink is always schema-valid");
        prop_assert_eq!(check.cell_profiles, accepted);
        std::fs::remove_file(&path).ok();
    }

    /// The serve state machine under hostile interleavings: claims,
    /// renewals for live/reclaimed/foreign leases, duplicate and
    /// out-of-range results, abrupt disconnects, clock advances past the
    /// lease, and flushes — in any order. After every step the cell sets
    /// partition the grid exactly, and the ingest/dedupe counters match an
    /// independent tally (duplicate Result frames across reconnects are
    /// counted, never double-ingested).
    #[test]
    fn serve_state_invariants_survive_hostile_interleavings(
        total in 1u64..8,
        ops in proptest::collection::vec(any::<u64>(), 1..120),
    ) {
        let mut s = ServeState::new(total, BTreeSet::new(), Duration::from_millis(100));
        let mut now = Instant::now();
        let (mut ingested, mut deduped) = (0u64, 0u64);
        for word in ops {
            // One word per op: low bits pick the op, a golden-ratio mix
            // decorrelates the two operand draws.
            let op = (word % 6) as u8;
            let x = word >> 3;
            let y = word.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let conn = x % 4;
            let cell = y % (total + 2); // sometimes out of range
            match op {
                0 => { let _ = s.claim(conn, now); }
                1 => s.renew(conn, cell, now),
                2 => {
                    let parked = Parked {
                        line: format!("{{\"cell\": {cell}}}"),
                        trials: 1,
                        elapsed_secs: 0.1,
                    };
                    match s.ingest(cell, parked, x % 7 != 0) {
                        Ingest::Parked => ingested += 1,
                        Ingest::Duplicate => deduped += 1,
                        Ingest::Rejected => {}
                    }
                }
                3 => {
                    let _ = s.release_conn(conn);
                }
                4 => {
                    now += Duration::from_millis(x % 250);
                    s.sweep_expired(now);
                }
                _ => while s.pop_flushable().is_some() {},
            }
            if let Err(e) = s.check_invariants() {
                prop_assert!(false, "invariant violated after op {op}: {e}");
            }
            prop_assert_eq!(s.cells_ingested, ingested);
            prop_assert_eq!(s.results_deduped, deduped);
            prop_assert!(s.written_len() <= total);
        }
    }
}

#[test]
fn unknown_and_malformed_kinds_are_rejected() {
    assert!(Msg::decode("{\"kind\": \"warp\"}")
        .unwrap_err()
        .contains("unknown"));
    assert!(Msg::decode("{\"cell\": 3}").unwrap_err().contains("kind"));
    assert!(Msg::decode("").is_err());
    assert!(Msg::decode("{\"kind\": \"lease\", \"cell\": 1}")
        .unwrap_err()
        .contains("lease_ms"));
    // Non-finite elapsed encodes as null, which decode refuses — a broken
    // worker clock cannot smuggle a null into the timings sidecar.
    let bad = Msg::Result {
        cell: 0,
        line: "{}".into(),
        elapsed_secs: f64::NAN,
        trials: 1,
    };
    assert!(Msg::decode(&bad.encode())
        .unwrap_err()
        .contains("elapsed_secs"));
}

#[test]
fn store_and_telemetry_lines_survive_the_wire_verbatim() {
    // The byte-identity story rests on this: a Result frame's embedded
    // store line comes back exactly, bytes for bytes.
    let store_line = "{\"kind\": \"cell\", \"cell\": 3, \"n\": \"128\", \
                      \"mean\": 9.75, \"p50\": 10, \"max\": null}";
    let msg = Msg::Result {
        cell: 3,
        line: store_line.into(),
        elapsed_secs: 0.25,
        trials: 8,
    };
    match Msg::decode(&msg.encode()).expect("decode") {
        Msg::Result { line, .. } => assert_eq!(line, store_line),
        other => panic!("wrong kind: {other:?}"),
    }
}

//! Integration tests for the durable multi-campaign job queue: two
//! campaigns submitted over the wire to one queue daemon, interleaved
//! across shared any-campaign workers talking through the deterministic
//! chaos proxy — and the per-job stores are byte-identical to clean
//! single-host runs.
//!
//! Also here: the crash-recovery acceptance test. A queue-mode `stabcon
//! serve` subprocess is `kill -9`'d mid-run; a restart with `--resume`
//! replays the `stabcon-jobs/1` journal, re-queues the interrupted jobs,
//! resumes their partial stores, and still converges to the exact
//! reference bytes.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use stabcon_exp::campaign::{run_campaign, RunConfig};
use stabcon_exp::fabric::{
    cancel_job, job_store_path, jobs_journal_path, query_status, run_worker_any, submit_campaign,
    ChaosProxy, ChaosSpec, QueueServeConfig, QueueServer, SpecDescriptor, WorkerConfig,
};
use stabcon_exp::store::Durability;
use stabcon_exp::telemetry::timings_path;

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("stabcon-fabric-queue");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir.join(format!("{}-{tag}.jsonl", std::process::id()))
}

/// Remove a queue daemon's whole on-disk footprint: journal plus per-job
/// stores and their timings sidecars.
fn cleanup_queue(out: &Path) {
    std::fs::remove_file(jobs_journal_path(out)).ok();
    for job in 1..=4u64 {
        let store = job_store_path(out, job);
        std::fs::remove_file(timings_path(&store)).ok();
        std::fs::remove_file(&store).ok();
    }
}

/// The two campaigns every test submits: different grids, names, seeds.
fn descriptors() -> [SpecDescriptor; 2] {
    [
        SpecDescriptor {
            preset: "smoke".into(),
            name: Some("qa".into()),
            trials: Some(6),
            seed: Some(0xA),
            ns: Some("64,96".into()),
        },
        SpecDescriptor {
            preset: "smoke".into(),
            name: Some("qb".into()),
            trials: Some(4),
            seed: Some(0xB),
            ns: Some("48".into()),
        },
    ]
}

/// Clean single-host reference bytes for one descriptor.
fn reference_bytes(desc: &SpecDescriptor, tag: &str) -> Vec<u8> {
    let spec = desc.build().expect("descriptor builds");
    let path = tmp(tag);
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(timings_path(&path)).ok();
    run_campaign(&spec, &path, &RunConfig::default()).expect("single-host run");
    let bytes = std::fs::read(&path).expect("read reference");
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(timings_path(&path)).ok();
    bytes
}

/// Submit with a connect-retry budget — the daemon (or subprocess) may
/// still be binding its listener.
fn submit_with_retry(
    addr: &str,
    client: &str,
    desc: &SpecDescriptor,
) -> stabcon_exp::fabric::SubmitOutcome {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match submit_campaign(addr, client, desc) {
            Ok(outcome) => return outcome,
            Err(e) => {
                assert!(Instant::now() < deadline, "submit never succeeded: {e}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// Poll until `path` has at least `lines` newline-terminated lines.
fn wait_for_lines(path: &Path, lines: usize, timeout: Duration) {
    let deadline = Instant::now() + timeout;
    loop {
        let have = std::fs::read(path)
            .map(|b| b.iter().filter(|&&c| c == b'\n').count())
            .unwrap_or(0);
        if have >= lines {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {lines} lines in {} (have {have})",
            path.display()
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Two campaigns over the wire, shared workers through the chaos proxy,
/// admission control and the live status plane exercised along the way —
/// and both job stores byte-identical to clean runs.
#[test]
fn two_campaigns_share_workers_and_stay_byte_identical() {
    let [da, db] = descriptors();
    let ref_a = reference_bytes(&da, "shared-ref-a");
    let ref_b = reference_bytes(&db, "shared-ref-b");

    let out = tmp("shared");
    cleanup_queue(&out);

    let server = QueueServer::bind("127.0.0.1:0", &out).expect("bind queue daemon");
    let addr = server.local_addr().expect("daemon addr").to_string();
    let cfg = QueueServeConfig {
        lease: Duration::from_secs(2),
        durability: Durability::Cell,
        max_active: 2,
        quota: 2,
        exit_when_idle: true,
        ..QueueServeConfig::default()
    };
    let serve_thread = std::thread::spawn(move || server.run(&cfg));

    // Control plane, over the wire: two admissions for client 'lab'.
    let sub_a = submit_with_retry(&addr, "lab", &da);
    let sub_b = submit_with_retry(&addr, "lab", &db);
    assert_eq!((sub_a.job, sub_a.cells), (1, 4));
    assert_eq!((sub_b.job, sub_b.cells), (2, 2));

    // Admission control: 'lab' is at its quota of 2 live jobs.
    let third = SpecDescriptor {
        seed: Some(0xC),
        ..da.clone()
    };
    let err = submit_campaign(&addr, "lab", &third).expect_err("over quota");
    assert!(err.contains("over-quota"), "unexpected rejection: {err}");

    // Another client is admitted (queued behind max_active=2)... and then
    // cancelled, over the wire.
    let sub_c = submit_with_retry(&addr, "visitor", &third);
    assert_eq!(sub_c.job, 3);
    let status = query_status(&addr, "probe", None).expect("status");
    assert!(status.accepting);
    assert_eq!(status.jobs.len(), 3);
    assert_eq!(status.queued, 1, "job 3 waits behind max_active=2");
    assert_eq!(
        cancel_job(&addr, "visitor", 3).expect("cancel"),
        "cancelled"
    );
    let one = query_status(&addr, "probe", Some(3)).expect("status of job 3");
    assert_eq!(one.jobs.len(), 1);
    assert_eq!(one.jobs[0].state, "cancelled");

    // Data plane: two any-campaign workers, both through the chaos proxy,
    // with a deep retry budget — torn frames cost reconnects, never cells.
    let proxy =
        ChaosProxy::bind("127.0.0.1:0", &addr, ChaosSpec::mild(29)).expect("bind chaos proxy");
    let proxy_addr = proxy.local_addr().expect("proxy addr").to_string();
    let stop = proxy.stop_handle();
    let proxy_thread = std::thread::spawn(move || proxy.run());

    let drain = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..2)
        .map(|i| {
            let addr = proxy_addr.clone();
            let drain = Arc::clone(&drain);
            std::thread::spawn(move || {
                run_worker_any(
                    &addr,
                    &WorkerConfig {
                        threads: 2,
                        name: format!("queue-worker-{i}"),
                        retries: 100,
                        backoff_ms: 20,
                        drain: Some(drain),
                        ..WorkerConfig::default()
                    },
                )
            })
        })
        .collect();

    let outcome = serve_thread
        .join()
        .expect("serve thread")
        .expect("queue outcome");
    drain.store(true, Ordering::SeqCst);
    for w in workers {
        let _ = w.join().expect("worker thread");
    }
    stop.store(true, Ordering::SeqCst);
    let _ = proxy_thread.join().expect("proxy thread");

    assert_eq!(outcome.jobs, 3);
    assert_eq!(outcome.done, 2);
    assert_eq!(outcome.cancelled, 1);
    assert!(!outcome.halted);
    assert_eq!(
        std::fs::read(job_store_path(&out, 1)).expect("job 1 store"),
        ref_a,
        "job 1 store differs from the clean single-host run"
    );
    assert_eq!(
        std::fs::read(job_store_path(&out, 2)).expect("job 2 store"),
        ref_b,
        "job 2 store differs from the clean single-host run"
    );
    cleanup_queue(&out);
}

/// The crash-recovery acceptance test: a real queue-daemon subprocess is
/// `kill -9`'d mid-run while a worker talks to it through the chaos
/// proxy; a `--resume` restart on the same port replays the journal and
/// both campaigns still converge to the exact reference bytes.
#[test]
fn kill_dash_nine_queue_daemon_replays_journal_to_identical_stores() {
    let [da, db] = descriptors();
    let ref_a = reference_bytes(&da, "kill9q-ref-a");
    let ref_b = reference_bytes(&db, "kill9q-ref-b");

    let out = tmp("kill9q");
    cleanup_queue(&out);

    // A free port the restart can re-bind (bind :0, read it back, release).
    let port = std::net::TcpListener::bind("127.0.0.1:0")
        .expect("probe port")
        .local_addr()
        .expect("probe addr")
        .port();
    let addr = format!("127.0.0.1:{port}");

    // Phase 1: a real `stabcon serve --queue` subprocess, per-cell fsync
    // on both the stores and the jobs journal.
    let mut child = Command::new(env!("CARGO_BIN_EXE_stabcon"))
        .args([
            "serve",
            "--queue",
            "--out",
            out.to_str().expect("utf8 path"),
            "--listen",
            &addr,
            "--lease-secs",
            "2",
            "--durability",
            "cell",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn queue daemon subprocess");

    let sub_a = submit_with_retry(&addr, "lab", &da);
    let sub_b = submit_with_retry(&addr, "lab", &db);
    assert_eq!((sub_a.job, sub_b.job), (1, 2));

    // One any-campaign worker through the chaos proxy; it outlives the
    // daemon crash on its reconnect budget.
    let proxy =
        ChaosProxy::bind("127.0.0.1:0", &addr, ChaosSpec::mild(41)).expect("bind chaos proxy");
    let proxy_addr = proxy.local_addr().expect("proxy addr").to_string();
    let stop = proxy.stop_handle();
    let proxy_thread = std::thread::spawn(move || proxy.run());
    let drain = Arc::new(AtomicBool::new(false));
    let worker = {
        let addr = proxy_addr.clone();
        let drain = Arc::clone(&drain);
        std::thread::spawn(move || {
            run_worker_any(
                &addr,
                &WorkerConfig {
                    threads: 2,
                    name: "kill9q-worker".into(),
                    retries: 200,
                    backoff_ms: 50,
                    drain: Some(drain),
                    ..WorkerConfig::default()
                },
            )
        })
    };

    // Let the run get underway — at least one cell durably in job 1's
    // store — then kill -9: no flush, no goodbye, no journal finalizer.
    wait_for_lines(&job_store_path(&out, 1), 2, Duration::from_secs(60));
    child.kill().expect("kill -9 the daemon");
    let _ = child.wait();

    // Phase 2: restart on the same port with --resume (in-process, so the
    // test can join it): the journal replays, interrupted jobs re-queue
    // with their partial stores, and the worker's reconnect loop finds
    // the new daemon through the same proxy.
    let server = QueueServer::bind(&addr, &out).expect("rebind queue daemon");
    let cfg = QueueServeConfig {
        lease: Duration::from_secs(2),
        durability: Durability::Cell,
        resume: true,
        exit_when_idle: true,
        ..QueueServeConfig::default()
    };
    let serve_thread = std::thread::spawn(move || server.run(&cfg));
    let outcome = serve_thread
        .join()
        .expect("serve thread")
        .expect("resumed queue outcome");
    drain.store(true, Ordering::SeqCst);
    let _ = worker.join().expect("worker thread");
    stop.store(true, Ordering::SeqCst);
    let _ = proxy_thread.join().expect("proxy thread");

    assert_eq!(outcome.jobs, 2, "journal replay restores both admissions");
    assert_eq!(outcome.done, 2);
    assert_eq!(
        std::fs::read(job_store_path(&out, 1)).expect("job 1 store"),
        ref_a,
        "job 1: kill -9 + journal replay must still converge to the reference bytes"
    );
    assert_eq!(
        std::fs::read(job_store_path(&out, 2)).expect("job 2 store"),
        ref_b,
        "job 2: kill -9 + journal replay must still converge to the reference bytes"
    );
    cleanup_queue(&out);
}

//! Property tests for the durable multi-campaign [`JobQueue`]: the queue's
//! structural invariants survive arbitrary hostile interleavings of
//! submissions (good and bad), activations, cancels, unpinned and pinned
//! claims, renewals, result ingests, flushes, disconnects, lease expiries,
//! SIGTERM halts — and crash-replay, where the queue is rebuilt from the
//! journal the operations wrote along the way, exactly as a `kill -9`'d
//! daemon rebuilds on `--resume`.
//!
//! Also pinned: every `stabcon-jobs/1` journal event survives a
//! line-encode→decode round trip, including descriptors full of hostile
//! strings — so a journal written by one daemon build is always readable
//! by the next.

use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

use proptest::prelude::*;
use stabcon_exp::fabric::{
    JobQueue, JobState, JournalEvent, Parked, QueueConfig, SpecDescriptor,
};

/// A descriptor that builds (smoke preset, tiny grid), plus its verified
/// fingerprint hex — what a well-behaved client ships.
fn good_descriptor(which: u64) -> (SpecDescriptor, String) {
    let pool = [("48", 0xA, "qa"), ("64", 0xB, "qb"), ("48,64", 0xC, "qc")];
    let (ns, seed, name) = pool[(which % pool.len() as u64) as usize];
    let desc = SpecDescriptor {
        preset: "smoke".into(),
        name: Some(name.into()),
        trials: Some(4),
        seed: Some(seed),
        ns: Some(ns.into()),
    };
    let spec = desc.build().expect("pool descriptor builds");
    (desc, format!("{:016x}", spec.fingerprint()))
}

/// Mirror of the daemon's journal discipline: append the events the serve
/// loop would append at each transition, into an in-memory journal the
/// crash-replay op feeds back through [`JobQueue::replay`].
struct Shadow {
    journal: Vec<JournalEvent>,
    /// Last state journaled per job, to detect Done/Draining transitions
    /// that happen inside claim/ingest/flush ops.
    journaled: BTreeMap<u64, JobState>,
}

impl Shadow {
    fn state(&mut self, job: u64, state: JobState) {
        self.journal.push(JournalEvent::State { job, state });
        self.journaled.insert(job, state);
    }

    /// Journal any lifecycle transitions the last op caused (the daemon
    /// does this from `refresh_state`'s return value; the test re-derives
    /// it by diffing against the last journaled state).
    fn sync(&mut self, q: &JobQueue) {
        let moved: Vec<(u64, JobState)> = q
            .jobs()
            .filter(|j| self.journaled.get(&j.id) != Some(&j.state))
            .map(|j| (j.id, j.state))
            .collect();
        for (job, state) in moved {
            self.state(job, state);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The queue state machine under hostile interleavings. After every
    /// op the structural invariants hold, the counts partition the job
    /// set, and a crash-replay from the shadow journal yields a queue
    /// whose invariants also hold — then the run continues on the
    /// replayed queue, so post-recovery states are stressed as hard as
    /// fresh ones.
    #[test]
    fn queue_invariants_survive_hostile_interleavings(
        max_active in 1usize..4,
        quota in 1usize..4,
        ops in proptest::collection::vec(any::<u64>(), 1..140),
    ) {
        let cfg = QueueConfig {
            max_active,
            quota,
            lease: Duration::from_millis(100),
        };
        let mut q = JobQueue::new(cfg.clone());
        let mut now = Instant::now();
        let mut shadow = Shadow { journal: Vec::new(), journaled: BTreeMap::new() };
        let clients = ["ana", "bo", "cy"];
        for word in ops {
            let op = word % 13;
            let x = word >> 4;
            let y = word.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let conn = x % 4;
            let job = y % 6; // often a real id, sometimes not
            let cell = (y >> 8) % 6; // sometimes out of any grid's range
            match op {
                // A well-formed submission; journal it when admitted,
                // exactly like the daemon (journal before Accepted).
                0 | 1 => {
                    let (desc, fp) = good_descriptor(x);
                    let client = clients[(x % 3) as usize];
                    if let Ok((id, cells)) = q.submit(client, &desc, &fp) {
                        shadow.journal.push(JournalEvent::Submit {
                            job: id,
                            client: client.into(),
                            spec: desc,
                            fingerprint: u64::from_str_radix(&fp, 16).unwrap(),
                            cells,
                        });
                        shadow.journaled.insert(id, JobState::Queued);
                    }
                }
                // A hostile submission: bad preset, bad fingerprint, or
                // zero-cell ns. Must reject without touching the queue.
                2 => {
                    let before = q.counts();
                    let (mut desc, mut fp) = good_descriptor(x);
                    match x % 3 {
                        0 => desc.preset = "no-such-preset".into(),
                        1 => fp = format!("{:016x}", y | 1),
                        _ => fp = "not-hex!".into(),
                    }
                    prop_assert!(q.submit("mallory", &desc, &fp).is_err());
                    prop_assert_eq!(q.counts(), before);
                }
                // Activation: the daemon journals Running *before* opening
                // the store; a random done-prefix stands in for a resumed
                // store (possibly already complete).
                3 | 4 => {
                    if let Some(id) = q.next_activation() {
                        let total = q.job(id).expect("activation id").cells_total;
                        let mut done = BTreeSet::new();
                        for c in 0..total.min(16) {
                            if y >> c & 1 != 0 {
                                done.insert(c);
                            }
                        }
                        shadow.state(id, JobState::Running);
                        if x % 11 == 0 {
                            // Store open failed.
                            q.fail(id, now);
                            shadow.state(id, JobState::Failed);
                        } else {
                            q.start(id, done, now).expect("start queued job");
                        }
                    }
                }
                5 => {
                    if let Ok(state) = q.cancel(job, now) {
                        shadow.state(job, state);
                    }
                }
                6 => { let _ = q.claim(conn, now); }
                7 => { let _ = q.claim_pinned(conn, job, now); }
                8 => q.renew(conn, job, cell, now),
                9 => {
                    let parked = Parked {
                        line: format!("{{\"cell\": {cell}}}"),
                        trials: 2,
                        elapsed_secs: 0.1,
                    };
                    let _ = q.ingest(job, cell, parked, x % 7 != 0, now);
                    while q.pop_flushable(job, now).is_some() {}
                }
                10 => q.release_conn(conn, now),
                11 => {
                    now += Duration::from_millis(x % 250);
                    let _ = q.sweep_expired(now);
                }
                // Crash: rebuild from the journal, as `--resume` does, and
                // keep going on the recovered queue. Once in a while halt
                // first — a SIGTERM'd daemon that then dies must recover
                // identically to one that crashed mid-run.
                _ => {
                    if x % 5 == 0 {
                        q.halt();
                        prop_assert!(!q.accepting());
                        prop_assert!(q.next_activation().is_none());
                    }
                    let mut fresh = JobQueue::new(cfg.clone());
                    fresh.replay(&shadow.journal).expect("replay own journal");
                    // Replay folds active states back to Queued; re-sync
                    // the dedupe map so re-activation journals Running
                    // again, as the daemon would.
                    shadow.journaled = fresh.jobs().map(|j| (j.id, j.state)).collect();
                    q = fresh;
                }
            }
            shadow.sync(&q);
            if let Err(e) = q.check_invariants() {
                prop_assert!(false, "invariant violated after op {op}: {e}");
            }
            let c = q.counts();
            prop_assert_eq!(
                (c.queued + c.running + c.done + c.cancelled + c.failed) as usize,
                q.jobs().count(),
                "counts must partition the job set"
            );
            if q.halted() {
                prop_assert!(!q.accepting(), "a halted queue never accepts");
            }
        }
        // Final recovery must always work: whatever state the run ended
        // in, the journal alone rebuilds a structurally valid queue.
        let mut fresh = JobQueue::new(cfg);
        fresh.replay(&shadow.journal).expect("final replay");
        prop_assert!(fresh.check_invariants().is_ok());
        prop_assert_eq!(fresh.jobs().count(), q.jobs().count());
    }
}

/// Escaping stress pool for journal payload strings (same spirit as the
/// wire-protocol props).
const NASTY: [&str; 6] = [
    "",
    "plain",
    "he said \"hi\"",
    "back\\slash\\",
    "line\nbreak\ttab",
    "κόσμε 🦀",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every journal event round-trips through its line encoding, hostile
    /// strings and optional descriptor fields included.
    #[test]
    fn journal_events_round_trip(
        kind in 0usize..2,
        x in any::<u64>(),
        y in any::<u64>(),
        a in 0usize..NASTY.len(),
        b in 0usize..NASTY.len(),
    ) {
        let event = match kind {
            0 => JournalEvent::Submit {
                job: x,
                client: format!("{}{}", NASTY[a], NASTY[b]),
                spec: SpecDescriptor {
                    preset: format!("{}{x}", NASTY[b]),
                    name: (y & 1 != 0).then(|| NASTY[a].to_string()),
                    trials: (y & 2 != 0).then_some(x),
                    seed: (y & 4 != 0).then_some(y),
                    ns: (y & 8 != 0).then(|| format!("{},{}", NASTY[b], x)),
                },
                fingerprint: y,
                cells: x ^ y,
            },
            _ => JournalEvent::State {
                job: x,
                state: match y % 6 {
                    0 => JobState::Queued,
                    1 => JobState::Running,
                    2 => JobState::Draining,
                    3 => JobState::Done,
                    4 => JobState::Cancelled,
                    _ => JobState::Failed,
                },
            },
        };
        let line = event.to_line();
        prop_assert!(!line.contains('\n'), "one line per event: {:?}", line);
        let back = JournalEvent::decode(&line).expect("decode");
        prop_assert_eq!(back, event, "line: {}", line);
    }

    /// Whatever bytes end up in a journal, decode never panics.
    #[test]
    fn journal_decode_never_panics(
        a in 0usize..NASTY.len(),
        b in 0usize..NASTY.len(),
        x in any::<u64>(),
        cut in 0usize..80,
    ) {
        let _ = JournalEvent::decode(&format!("{}{}{x}", NASTY[a], NASTY[b]));
        let line = JournalEvent::State { job: x, state: JobState::Running }.to_line();
        let mut cut = cut.min(line.len());
        while !line.is_char_boundary(cut) {
            cut -= 1;
        }
        let _ = JournalEvent::decode(&line[..cut]);
    }
}

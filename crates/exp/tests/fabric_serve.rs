//! Integration test for the `stabcon serve` daemon: a worker that claims a
//! cell and dies (disconnect) and one that claims a cell and hangs (lease
//! expiry) both have their cells re-claimed and re-run by a healthy worker
//! — and the assembled store is byte-identical to the single-host run,
//! because re-runs from deterministic seeds are exact.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use stabcon_exp::campaign::{run_campaign, CampaignSpec, RunConfig};
use stabcon_exp::fabric::{run_worker, Msg, ServeConfig, Server, WorkerConfig, FABRIC_SCHEMA};
use stabcon_exp::telemetry::{check_telemetry, timings_path};
use stabcon_exp::InitSpec;

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("stabcon-fabric-serve");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir.join(format!("{}-{tag}.jsonl", std::process::id()))
}

fn cleanup(store: &PathBuf) {
    std::fs::remove_file(store).ok();
    std::fs::remove_file(timings_path(store)).ok();
}

/// 4 quick cells.
fn grid() -> CampaignSpec {
    CampaignSpec {
        name: "serve-it".into(),
        seed: 0x5E4E,
        trials: 4,
        ns: vec![64, 96],
        inits: vec![InitSpec::TwoBinsHalf, InitSpec::AllDistinct],
        ..CampaignSpec::default()
    }
}

/// Connect and complete the fabric handshake, returning the connection and
/// its buffered read side.
fn handshake(addr: &str, fingerprint: &str) -> (TcpStream, BufReader<TcpStream>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let hello = Msg::Hello {
        schema: FABRIC_SCHEMA.into(),
        worker: "rogue".into(),
        fingerprint: fingerprint.into(),
    };
    writeln!(stream, "{}", hello.encode()).expect("send hello");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read welcome");
    match Msg::decode(line.trim_end()).expect("decode welcome") {
        Msg::Welcome { .. } => {}
        other => panic!("handshake failed: {other:?}"),
    }
    (stream, reader)
}

/// Claim one cell and return its id (the rogue never runs it).
fn claim_one(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>) -> u64 {
    writeln!(stream, "{}", Msg::Claim.encode()).expect("send claim");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read lease");
    match Msg::decode(line.trim_end()).expect("decode lease") {
        Msg::Lease { cell, lease_ms } => {
            assert!(lease_ms > 0);
            cell
        }
        other => panic!("expected a lease, got {other:?}"),
    }
}

#[test]
fn serve_survives_killed_and_hung_workers() {
    let spec = grid();
    let fingerprint = format!("{:016x}", spec.header().fingerprint);

    // Reference: the single-host store.
    let reference_path = tmp("reference");
    cleanup(&reference_path);
    run_campaign(&spec, &reference_path, &RunConfig::default()).expect("single-host run");
    let reference = std::fs::read(&reference_path).expect("read reference");

    let store = tmp("served");
    let sink = tmp("served-telemetry");
    cleanup(&store);
    std::fs::remove_file(&sink).ok();
    let server = Server::bind("127.0.0.1:0", &spec, &store).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let cfg = ServeConfig {
        lease: Duration::from_millis(300),
        progress: false,
        telemetry: Some(sink.clone()),
        resume: false,
    };
    let server_thread = std::thread::spawn(move || server.run(&cfg));

    // A worker whose spec disagrees is rejected at the handshake.
    let wrong_spec = CampaignSpec {
        seed: 0xBAD,
        ..grid()
    };
    let err = run_worker(&addr, &wrong_spec, &WorkerConfig::default()).unwrap_err();
    assert!(err.contains("rejected"), "{err}");
    assert!(err.contains("fingerprint"), "{err}");

    // Killed worker: claims a cell, then the host dies (connection drops).
    let killed_cell = {
        let (mut stream, mut reader) = handshake(&addr, &fingerprint);
        claim_one(&mut stream, &mut reader)
        // stream dropped here — the server releases the lease immediately.
    };

    // Hung worker: claims a cell and goes silent without disconnecting;
    // only the lease expiry can reclaim this one.
    let (hung_stream, mut hung_reader) = handshake(&addr, &fingerprint);
    let hung_cell = {
        let mut stream = hung_stream.try_clone().expect("clone");
        claim_one(&mut stream, &mut hung_reader)
    };

    // A healthy worker drains the campaign, re-running both lost cells.
    let outcome = run_worker(
        &addr,
        &spec,
        &WorkerConfig {
            threads: 2,
            name: "healthy".into(),
            chunk: None,
        },
    )
    .expect("healthy worker");
    assert_eq!(
        outcome.cells_run, 4,
        "the healthy worker re-runs the killed ({killed_cell}) and hung \
         ({hung_cell}) workers' cells"
    );

    let served = server_thread
        .join()
        .expect("server thread")
        .expect("serve outcome");
    drop(hung_stream);
    assert_eq!(served.cells_total, 4);
    assert_eq!(served.cells_ingested, 4);
    assert_eq!(
        served.workers_seen, 3,
        "rogues count, the rejected one doesn't"
    );
    assert!(
        served.leases_reclaimed >= 2,
        "both lost leases reclaimed (got {})",
        served.leases_reclaimed
    );

    // The assembled store is byte-identical to the single-host run.
    assert_eq!(
        std::fs::read(&store).expect("read served store"),
        reference,
        "serve-assembled store differs from the single-host store"
    );

    // The ingested telemetry stream satisfies the telemetry schema.
    let check = check_telemetry(&sink).expect("valid serve telemetry sink");
    assert!(check.cell_profiles >= 4, "one profile per ingested cell");

    cleanup(&reference_path);
    cleanup(&store);
    std::fs::remove_file(&sink).ok();
}

#[test]
fn serve_resumes_a_partial_store() {
    // Cells already in the store are skipped: only the remainder is leased.
    let spec = grid();
    let store = tmp("resume");
    cleanup(&store);
    run_campaign(
        &spec,
        &store,
        &RunConfig {
            max_cells: Some(2),
            ..RunConfig::default()
        },
    )
    .expect("partial single-host run");

    let reference_path = tmp("resume-reference");
    cleanup(&reference_path);
    run_campaign(&spec, &reference_path, &RunConfig::default()).expect("reference run");

    let server = Server::bind("127.0.0.1:0", &spec, &store).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let cfg = ServeConfig {
        lease: Duration::from_millis(500),
        resume: true,
        ..ServeConfig::default()
    };
    let server_thread = std::thread::spawn(move || server.run(&cfg));

    let outcome = run_worker(&addr, &spec, &WorkerConfig::default()).expect("worker");
    assert_eq!(outcome.cells_run, 2, "only the missing cells are leased");

    let served = server_thread
        .join()
        .expect("server thread")
        .expect("serve outcome");
    assert_eq!(served.cells_skipped, 2);
    assert_eq!(served.cells_ingested, 2);
    assert_eq!(
        std::fs::read(&store).expect("read resumed store"),
        std::fs::read(&reference_path).expect("read reference"),
        "resumed serve store differs from the single-host store"
    );

    cleanup(&store);
    cleanup(&reference_path);
}

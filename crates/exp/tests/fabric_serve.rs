//! Integration test for the `stabcon serve` daemon: a worker that claims a
//! cell and dies (disconnect) and one that claims a cell and hangs (lease
//! expiry) both have their cells re-claimed and re-run by a healthy worker
//! — and the assembled store is byte-identical to the single-host run,
//! because re-runs from deterministic seeds are exact.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use stabcon_exp::campaign::{run_campaign, CampaignSpec, RunConfig};
use stabcon_exp::fabric::{run_worker, Msg, ServeConfig, Server, WorkerConfig, FABRIC_SCHEMA};
use stabcon_exp::telemetry::{check_telemetry, timings_path};
use stabcon_exp::InitSpec;
use stabcon_util::jsonl::{get, parse_flat, JsonScalar};

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("stabcon-fabric-serve");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir.join(format!("{}-{tag}.jsonl", std::process::id()))
}

fn cleanup(store: &PathBuf) {
    std::fs::remove_file(store).ok();
    std::fs::remove_file(timings_path(store)).ok();
}

/// 4 quick cells.
fn grid() -> CampaignSpec {
    CampaignSpec {
        name: "serve-it".into(),
        seed: 0x5E4E,
        trials: 4,
        ns: vec![64, 96],
        inits: vec![InitSpec::TwoBinsHalf, InitSpec::AllDistinct],
        ..CampaignSpec::default()
    }
}

/// Connect and complete the fabric handshake, returning the connection and
/// its buffered read side.
fn handshake(addr: &str, fingerprint: &str) -> (TcpStream, BufReader<TcpStream>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let hello = Msg::Hello {
        schema: FABRIC_SCHEMA.into(),
        worker: "rogue".into(),
        fingerprint: fingerprint.into(),
    };
    writeln!(stream, "{}", hello.encode()).expect("send hello");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read welcome");
    match Msg::decode(line.trim_end()).expect("decode welcome") {
        Msg::Welcome { .. } => {}
        other => panic!("handshake failed: {other:?}"),
    }
    (stream, reader)
}

/// Claim one cell and return its id (the rogue never runs it).
fn claim_one(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>) -> u64 {
    writeln!(stream, "{}", Msg::Claim.encode()).expect("send claim");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read lease");
    match Msg::decode(line.trim_end()).expect("decode lease") {
        Msg::Lease { cell, lease_ms } => {
            assert!(lease_ms > 0);
            cell
        }
        other => panic!("expected a lease, got {other:?}"),
    }
}

#[test]
fn serve_survives_killed_and_hung_workers() {
    let spec = grid();
    let fingerprint = format!("{:016x}", spec.header().fingerprint);

    // Reference: the single-host store.
    let reference_path = tmp("reference");
    cleanup(&reference_path);
    run_campaign(&spec, &reference_path, &RunConfig::default()).expect("single-host run");
    let reference = std::fs::read(&reference_path).expect("read reference");

    let store = tmp("served");
    let sink = tmp("served-telemetry");
    cleanup(&store);
    std::fs::remove_file(&sink).ok();
    let server = Server::bind("127.0.0.1:0", &spec, &store).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let cfg = ServeConfig {
        lease: Duration::from_millis(300),
        telemetry: Some(sink.clone()),
        ..ServeConfig::default()
    };
    let server_thread = std::thread::spawn(move || server.run(&cfg));

    // A worker whose spec disagrees is rejected at the handshake.
    let wrong_spec = CampaignSpec {
        seed: 0xBAD,
        ..grid()
    };
    let err = run_worker(&addr, &wrong_spec, &WorkerConfig::default()).unwrap_err();
    assert!(err.contains("rejected"), "{err}");
    assert!(err.contains("fingerprint"), "{err}");

    // Killed worker: claims a cell, then the host dies (connection drops).
    let killed_cell = {
        let (mut stream, mut reader) = handshake(&addr, &fingerprint);
        claim_one(&mut stream, &mut reader)
        // stream dropped here — the server releases the lease immediately.
    };

    // Hung worker: claims a cell and goes silent without disconnecting;
    // only the lease expiry can reclaim this one.
    let (hung_stream, mut hung_reader) = handshake(&addr, &fingerprint);
    let hung_cell = {
        let mut stream = hung_stream.try_clone().expect("clone");
        claim_one(&mut stream, &mut hung_reader)
    };

    // A healthy worker drains the campaign, re-running both lost cells.
    let outcome = run_worker(
        &addr,
        &spec,
        &WorkerConfig {
            threads: 2,
            name: "healthy".into(),
            ..WorkerConfig::default()
        },
    )
    .expect("healthy worker");
    assert_eq!(
        outcome.cells_run, 4,
        "the healthy worker re-runs the killed ({killed_cell}) and hung \
         ({hung_cell}) workers' cells"
    );

    let served = server_thread
        .join()
        .expect("server thread")
        .expect("serve outcome");
    drop(hung_stream);
    assert_eq!(served.cells_total, 4);
    assert_eq!(served.cells_ingested, 4);
    assert_eq!(
        served.workers_seen, 3,
        "rogues count, the rejected one doesn't"
    );
    assert!(
        served.leases_reclaimed >= 2,
        "both lost leases reclaimed (got {})",
        served.leases_reclaimed
    );

    // The assembled store is byte-identical to the single-host run.
    assert_eq!(
        std::fs::read(&store).expect("read served store"),
        reference,
        "serve-assembled store differs from the single-host store"
    );

    // The ingested telemetry stream satisfies the telemetry schema.
    let check = check_telemetry(&sink).expect("valid serve telemetry sink");
    assert!(check.cell_profiles >= 4, "one profile per ingested cell");

    cleanup(&reference_path);
    cleanup(&store);
    std::fs::remove_file(&sink).ok();
}

/// The canonical store cell line for `cell`, looked up in a finished
/// reference store by id — what an honest worker would ship.
fn reference_line(reference: &[u8], cell: u64) -> String {
    String::from_utf8_lossy(reference)
        .lines()
        .skip(1) // header
        .find(|l| {
            parse_flat(l)
                .ok()
                .and_then(|o| get(&o, "cell").and_then(JsonScalar::as_u64))
                == Some(cell)
        })
        .unwrap_or_else(|| panic!("reference store has no cell {cell}"))
        .to_string()
}

#[test]
fn heartbeats_keep_a_slow_but_alive_worker_leased() {
    // A worker that takes 3× the lease to finish a cell keeps its lease by
    // heartbeating: the deadline sweep must distinguish slow from dead.
    let spec = grid();
    let fingerprint = format!("{:016x}", spec.header().fingerprint);

    let reference_path = tmp("slow-reference");
    cleanup(&reference_path);
    run_campaign(&spec, &reference_path, &RunConfig::default()).expect("single-host run");
    let reference = std::fs::read(&reference_path).expect("read reference");

    let store = tmp("slow-served");
    cleanup(&store);
    let server = Server::bind("127.0.0.1:0", &spec, &store).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let cfg = ServeConfig {
        lease: Duration::from_millis(300),
        ..ServeConfig::default()
    };
    let server_thread = std::thread::spawn(move || server.run(&cfg));

    // The slow worker: claims a cell, then "computes" for 3 lease
    // durations, renewing every lease/3 — and finally ships the exact
    // line an honest run produces.
    let (mut slow, mut slow_reader) = handshake(&addr, &fingerprint);
    let slow_cell = claim_one(&mut slow, &mut slow_reader);
    for _ in 0..9 {
        std::thread::sleep(Duration::from_millis(100));
        writeln!(slow, "{}", Msg::Renew { cell: slow_cell }.encode()).expect("send renew");
    }
    let result = Msg::Result {
        cell: slow_cell,
        line: reference_line(&reference, slow_cell),
        elapsed_secs: 0.9,
        trials: spec.trials,
    };
    writeln!(slow, "{}", result.encode()).expect("ship result");

    // A healthy worker drains the rest. If the sweep had reclaimed the
    // slow worker's cell, the healthy worker would have run 4 cells.
    let outcome = run_worker(&addr, &spec, &WorkerConfig::default()).expect("healthy worker");
    assert_eq!(outcome.cells_run, 3, "the slow worker's cell stayed leased");

    let served = server_thread
        .join()
        .expect("server thread")
        .expect("serve outcome");
    drop(slow);
    assert_eq!(served.leases_reclaimed, 0, "nobody died, nobody expired");
    assert!(
        served.leases_renewed >= 2,
        "heartbeats extended the lease (got {})",
        served.leases_renewed
    );
    assert_eq!(served.cells_ingested, 4);
    assert_eq!(
        std::fs::read(&store).expect("read served store"),
        reference,
        "slow-worker store differs from the single-host store"
    );

    cleanup(&reference_path);
    cleanup(&store);
}

#[test]
fn duplicate_results_across_reconnects_are_deduped_exactly() {
    // A worker that ships the same completed cell three times — the
    // reconnect-resubmission pattern, amplified — lands exactly one store
    // line, and the dedupe counter reports the other two.
    let spec = grid();
    let fingerprint = format!("{:016x}", spec.header().fingerprint);

    let reference_path = tmp("dup-reference");
    cleanup(&reference_path);
    run_campaign(&spec, &reference_path, &RunConfig::default()).expect("single-host run");
    let reference = std::fs::read(&reference_path).expect("read reference");

    let store = tmp("dup-served");
    cleanup(&store);
    let server = Server::bind("127.0.0.1:0", &spec, &store).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let cfg = ServeConfig {
        lease: Duration::from_millis(500),
        ..ServeConfig::default()
    };
    let server_thread = std::thread::spawn(move || server.run(&cfg));

    let (mut stream, mut reader) = handshake(&addr, &fingerprint);
    let cell = claim_one(&mut stream, &mut reader);
    let result = Msg::Result {
        cell,
        line: reference_line(&reference, cell),
        elapsed_secs: 0.1,
        trials: spec.trials,
    };
    for _ in 0..3 {
        writeln!(stream, "{}", result.encode()).expect("ship result");
    }
    // A claim round-trip proves (by in-order processing on this
    // connection) all three copies were ingested before we assert.
    writeln!(stream, "{}", Msg::Claim.encode()).expect("send claim");
    let mut line = String::new();
    reader.read_line(&mut line).expect("claim reply");
    drop(stream); // releases whatever that claim leased

    let outcome = run_worker(&addr, &spec, &WorkerConfig::default()).expect("healthy worker");
    assert_eq!(outcome.cells_run, 3);

    let served = server_thread
        .join()
        .expect("server thread")
        .expect("serve outcome");
    assert_eq!(served.results_deduped, 2, "three copies, one ingest");
    assert_eq!(served.cells_ingested, 4);
    assert_eq!(
        std::fs::read(&store).expect("read served store"),
        reference,
        "duplicated results corrupted the store"
    );

    cleanup(&reference_path);
    cleanup(&store);
}

#[test]
fn serve_resumes_a_partial_store() {
    // Cells already in the store are skipped: only the remainder is leased.
    let spec = grid();
    let store = tmp("resume");
    cleanup(&store);
    run_campaign(
        &spec,
        &store,
        &RunConfig {
            max_cells: Some(2),
            ..RunConfig::default()
        },
    )
    .expect("partial single-host run");

    let reference_path = tmp("resume-reference");
    cleanup(&reference_path);
    run_campaign(&spec, &reference_path, &RunConfig::default()).expect("reference run");

    let server = Server::bind("127.0.0.1:0", &spec, &store).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let cfg = ServeConfig {
        lease: Duration::from_millis(500),
        resume: true,
        ..ServeConfig::default()
    };
    let server_thread = std::thread::spawn(move || server.run(&cfg));

    let outcome = run_worker(&addr, &spec, &WorkerConfig::default()).expect("worker");
    assert_eq!(outcome.cells_run, 2, "only the missing cells are leased");

    let served = server_thread
        .join()
        .expect("server thread")
        .expect("serve outcome");
    assert_eq!(served.cells_skipped, 2);
    assert_eq!(served.cells_ingested, 2);
    assert_eq!(
        std::fs::read(&store).expect("read resumed store"),
        std::fs::read(&reference_path).expect("read reference"),
        "resumed serve store differs from the single-host store"
    );

    cleanup(&store);
    cleanup(&reference_path);
}

//! Observer fold invariance: for EVERY observer, the streamed `run_cell`
//! aggregate — extras channels included — is identical to the materialized
//! fold (run every trial sequentially, capture, push in trial order), at
//! any thread count and chunk size.
//!
//! This is the property the driver ports lean on: integer channels are
//! order-independent sketches, float channels fold per-trial partials in
//! global trial order, so neither scheduling nor chunking can leak into the
//! numbers.

use proptest::prelude::*;
use stabcon_core::adversary::AdversarySpec;
use stabcon_core::init::InitialCondition;
use stabcon_core::runner::SimSpec;
use stabcon_exp::{run_cell, CellAggregate, CellSpec, HitMetric, TrialMetrics, TrialObserver};
use stabcon_par::ThreadPool;
use stabcon_util::rng::derive_seed;

const THREAD_CHOICES: [usize; 3] = [1, 2, 8];
const CHUNK_CHOICES: [u64; 2] = [3, 10];

/// Every observer variant, over a sim shaped so its channels collect real
/// samples (adversarial full-horizon for the stability observer, one-round
/// two-bin for drift, plain sweeps for the rest).
fn cell_for(observer_ix: usize, n: usize, trials: u64, seed: u64) -> CellSpec {
    match observer_ix {
        0 => CellSpec::new(
            SimSpec::new(n).init(InitialCondition::UniformRandom { m: 5 }),
            trials,
            seed,
        ),
        1 => CellSpec::new(
            SimSpec::new(n).init(InitialCondition::UniformRandom { m: 4 }),
            trials,
            seed,
        )
        .observer(TrialObserver::LastUnsettledRound),
        2 => CellSpec::new(
            SimSpec::new(n)
                .init(InitialCondition::TwoBins {
                    left: n / 2 - n / 16,
                })
                .max_rounds(1),
            trials,
            seed,
        )
        .observer(TrialObserver::DriftGrowth),
        _ => {
            let sim = SimSpec::new(n)
                .init(InitialCondition::TwoBins { left: n / 2 })
                .adversary(AdversarySpec::Random, 2)
                .max_rounds(120)
                .full_horizon(true);
            let threshold = sim.disagreement_threshold();
            CellSpec::new(sim, trials, seed)
                .metric(HitMetric::AlmostStable)
                .observer(TrialObserver::StabilityExcursions {
                    n: n as u64,
                    threshold,
                })
        }
    }
}

fn materialized_fold(cell: &CellSpec) -> CellAggregate {
    let mut agg = CellAggregate::new();
    for i in 0..cell.trials {
        let r = cell.sim.run_seeded(derive_seed(cell.seed, i));
        agg.push(&TrialMetrics::capture(&r, cell.observer));
    }
    agg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn any_observer_fold_is_thread_and_chunk_invariant(
        observer_ix in 0usize..4,
        seed in 0u64..1_000,
        trials in 1u64..24,
    ) {
        let cell = cell_for(observer_ix, 128, trials, seed);
        let reference = materialized_fold(&cell);
        for threads in THREAD_CHOICES {
            let pool = ThreadPool::new(threads);
            for chunk in CHUNK_CHOICES {
                let streamed = run_cell(&pool, &cell, chunk);
                prop_assert_eq!(
                    &streamed,
                    &reference,
                    "observer {} differs at threads={} chunk={}",
                    cell.observer.label(),
                    threads,
                    chunk
                );
            }
        }
    }
}

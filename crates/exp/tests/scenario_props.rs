//! Scenario-axis determinism: a message-engine cell under network faults
//! (latency, drops, partitions, churn, Byzantine responders) must render
//! the **same store line** no matter how the scheduler slices it — thread
//! count 1/2/8, any chunk size, any worker interleaving. The fault layer
//! draws every coin from counter streams keyed on `(cell seed, round,
//! message index)`, so this holds by construction; this suite pins it.

use proptest::prelude::*;
use stabcon_core::engine::{EngineSpec, MessageConfig, Rejoin, ScenarioSpec};
use stabcon_core::init::InitialCondition;
use stabcon_core::runner::SimSpec;
use stabcon_exp::cell::{run_cell, CellSpec};
use stabcon_exp::observer::TrialObserver;
use stabcon_exp::store;
use stabcon_par::ThreadPool;

const THREAD_CHOICES: [usize; 3] = [1, 2, 8];
const CHUNK_CHOICES: [u64; 3] = [1, 3, 32];

/// One scenario per fault axis, plus a kitchen-sink combination.
fn scenario(ix: usize) -> ScenarioSpec {
    match ix {
        0 => ScenarioSpec::clean(),
        1 => ScenarioSpec::clean().with_latency(1, 3),
        2 => ScenarioSpec::clean().with_drop_per_mille(120),
        3 => ScenarioSpec::clean().with_partition(500, 2, 25),
        4 => ScenarioSpec::clean().with_churn(12, 3, 22, Rejoin::PreCrash),
        5 => ScenarioSpec::clean().with_churn(12, 3, 22, Rejoin::Adversarial),
        6 => ScenarioSpec::clean().with_byzantine(10),
        _ => ScenarioSpec::clean()
            .with_latency(0, 2)
            .with_drop_per_mille(60)
            .with_partition(400, 2, 18)
            .with_churn(8, 4, 20, Rejoin::Adversarial)
            .with_byzantine(6),
    }
}

fn hostile_cell(scen_ix: usize, seed: u64) -> CellSpec {
    let sim = SimSpec::new(128)
        .init(InitialCondition::TwoBins { left: 64 })
        .engine(EngineSpec::Message(MessageConfig {
            scenario: scenario(scen_ix),
            ..MessageConfig::default()
        }))
        .max_rounds(400);
    CellSpec::new(sim, 8, seed)
        .observer(TrialObserver::NetTotals)
        .label("scenario", scenario(scen_ix).label())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The rendered store line — aggregate stats plus the net-totals
    /// observer columns — is a pure function of the cell spec.
    #[test]
    fn store_line_is_invariant_under_threads_and_chunks(
        scen_ix in 0usize..8,
        seed in 0u64..1_000,
        t_ix in 0usize..3,
        c_ix in 0usize..3,
    ) {
        let cell = hostile_cell(scen_ix, seed);
        let reference = {
            let pool = ThreadPool::new(1);
            store::cell_line(&cell, &run_cell(&pool, &cell, 4))
        };
        let pool = ThreadPool::new(THREAD_CHOICES[t_ix]);
        let line = store::cell_line(&cell, &run_cell(&pool, &cell, CHUNK_CHOICES[c_ix]));
        prop_assert_eq!(
            &line, &reference,
            "scenario {} differs at threads={} chunk={}",
            scenario(scen_ix).label(), THREAD_CHOICES[t_ix], CHUNK_CHOICES[c_ix]
        );
    }
}

/// Faults cost delivery: under link drops the delivered total falls below
/// the clean cell's, while both remain deterministic cell to cell.
#[test]
fn dropped_traffic_shows_up_in_the_observer_columns() {
    let pool = ThreadPool::new(4);
    let clean = hostile_cell(0, 7);
    let lossy = hostile_cell(2, 7);
    let clean_line = store::cell_line(&clean, &run_cell(&pool, &clean, 4));
    let lossy_line = store::cell_line(&lossy, &run_cell(&pool, &lossy, 4));
    assert!(clean_line.contains("net_delivered"), "{clean_line}");
    assert!(lossy_line.contains("net_dropped"), "{lossy_line}");
    assert_ne!(clean_line, lossy_line);
}

//! The fabric's core contract: for any shard count, shard assignment,
//! thread count, and interrupt point, merging the per-shard stores yields a
//! store **byte-identical** to the single-host run — and the merge refuses
//! stores whose fingerprints disagree or whose coverage is wrong.

use std::path::PathBuf;

use proptest::prelude::*;
use stabcon_exp::campaign::{run_campaign, CampaignSpec, RunConfig};
use stabcon_exp::fabric::{merge_stores, shard_store_path, ShardSelection};
use stabcon_exp::telemetry::timings_path;
use stabcon_exp::InitSpec;

const THREAD_CHOICES: [usize; 3] = [1, 2, 8];
const SHARD_COUNTS: [u64; 4] = [1, 2, 3, 5];

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("stabcon-shard-merge-props");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir.join(format!("{}-{tag}.jsonl", std::process::id()))
}

/// 6 cells (3 ns × 2 inits), 3 trials each — enough ids for 5 shards to
/// produce uneven (including empty-adjacent) ranges.
fn grid(seed: u64) -> CampaignSpec {
    CampaignSpec {
        name: "shard-prop".into(),
        seed,
        trials: 3,
        ns: vec![64, 96, 128],
        inits: vec![InitSpec::TwoBinsHalf, InitSpec::AllDistinct],
        ..CampaignSpec::default()
    }
}

fn cleanup(store: &PathBuf) {
    std::fs::remove_file(store).ok();
    std::fs::remove_file(timings_path(store)).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// merge(shard stores) == single-host store, byte for byte, with one
    /// shard interrupted mid-run and resumed.
    #[test]
    fn merge_of_shards_is_byte_identical_to_single_host(
        seed in 0u64..1_000,
        count_idx in 0usize..SHARD_COUNTS.len(),
        threads_idx in 0usize..THREAD_CHOICES.len(),
        interrupt_shard in 0u64..5,
    ) {
        let spec = grid(seed);
        let count = SHARD_COUNTS[count_idx];
        let threads = THREAD_CHOICES[threads_idx];
        let interrupt_shard = interrupt_shard % count;
        let tag = format!("{seed}-{count}-{threads}-{interrupt_shard}");

        // Reference: the uninterrupted single-host store.
        let single = tmp(&format!("single-{tag}"));
        cleanup(&single);
        run_campaign(&spec, &single, &RunConfig {
            threads,
            ..RunConfig::default()
        }).expect("single-host run");
        let reference = std::fs::read(&single).expect("read single-host store");

        // Each shard into its own store; one shard is interrupted after a
        // single cell and resumed (the crash-recovery path CI exercises).
        let out = tmp(&format!("sharded-{tag}"));
        let mut shard_paths = Vec::new();
        for index in 0..count {
            let shard = ShardSelection::Index { index, count };
            let path = shard_store_path(&out, &shard);
            cleanup(&path);
            let interrupted = index == interrupt_shard;
            let cfg = RunConfig {
                threads,
                shard: Some(shard.clone()),
                max_cells: interrupted.then_some(1),
                ..RunConfig::default()
            };
            let first = run_campaign(&spec, &path, &cfg).expect("shard run");
            if interrupted && !first.complete() {
                let resumed = run_campaign(&spec, &path, &RunConfig {
                    resume: true,
                    max_cells: None,
                    ..cfg
                }).expect("shard resume");
                prop_assert!(resumed.complete(), "resume finishes the shard");
            }
            shard_paths.push(path);
        }

        let merged = tmp(&format!("merged-{tag}"));
        cleanup(&merged);
        let outcome = merge_stores(&shard_paths, &merged, Some(&spec.header()))
            .expect("merge");
        prop_assert_eq!(outcome.shards, count as usize);
        prop_assert_eq!(outcome.cells, 6);
        prop_assert!(outcome.timings_merged, "every shard writes a sidecar");

        let bytes = std::fs::read(&merged).expect("read merged store");
        prop_assert_eq!(
            &bytes, &reference,
            "merged {} shards (threads {}, shard {} interrupted) differs \
             from single-host store",
            count, threads, interrupt_shard
        );

        cleanup(&single);
        cleanup(&merged);
        for p in &shard_paths {
            cleanup(p);
        }
    }
}

#[test]
fn merge_rejects_fingerprint_mismatch_and_bad_coverage() {
    let spec = grid(0xFAB);
    let out = tmp("reject");
    let mut paths = Vec::new();
    for index in 0..2 {
        let shard = ShardSelection::Index { index, count: 2 };
        let path = shard_store_path(&out, &shard);
        cleanup(&path);
        run_campaign(
            &spec,
            &path,
            &RunConfig {
                shard: Some(shard),
                ..RunConfig::default()
            },
        )
        .expect("shard run");
        paths.push(path);
    }

    // Coverage: one shard alone leaves a hole, named by id range.
    let merged = tmp("reject-merged");
    cleanup(&merged);
    let err = merge_stores(&paths[..1], &merged, None).unwrap_err();
    assert!(err.contains("incomplete coverage"), "{err}");
    assert!(err.contains("cells 3/6"), "{err}");
    assert!(err.contains("3-5"), "must name the missing ids: {err}");

    // Overlap: the same shard twice is two claims on every cell.
    let twice = [paths[0].clone(), paths[0].clone(), paths[1].clone()];
    let err = merge_stores(&twice, &merged, None).unwrap_err();
    assert!(err.contains("shards overlap"), "{err}");

    // Expected-spec check: the caller's spec flags must match the shards.
    let other = CampaignSpec {
        seed: 0xBEEF,
        ..grid(0xFAB)
    };
    let err = merge_stores(&paths, &merged, Some(&other.header())).unwrap_err();
    assert!(err.contains("different campaign spec"), "{err}");

    // Cross-shard fingerprint check: a shard from another campaign cannot
    // slip into the input list.
    let alien_shard = ShardSelection::Index { index: 1, count: 2 };
    let alien = shard_store_path(&tmp("alien"), &alien_shard);
    cleanup(&alien);
    run_campaign(
        &other,
        &alien,
        &RunConfig {
            shard: Some(alien_shard),
            ..RunConfig::default()
        },
    )
    .expect("alien shard run");
    let mixed = [paths[0].clone(), alien.clone()];
    let err = merge_stores(&mixed, &merged, None).unwrap_err();
    assert!(err.contains("disagrees"), "{err}");

    // A torn shard (interrupted mid-append) must be resumed, not merged.
    let torn = tmp("reject-torn");
    std::fs::copy(&paths[1], &torn).expect("copy shard");
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&torn)
        .expect("open torn");
    write!(f, "{{\"kind\": \"cell\", \"cel").expect("tear");
    drop(f);
    let torn_inputs = [paths[0].clone(), torn.clone()];
    let err = merge_stores(&torn_inputs, &merged, None).unwrap_err();
    assert!(err.contains("torn"), "{err}");

    // Output overwrite refusal.
    std::fs::write(&merged, "existing\n").expect("write");
    let err = merge_stores(&paths, &merged, None).unwrap_err();
    assert!(err.contains("refusing to overwrite"), "{err}");

    cleanup(&merged);
    cleanup(&alien);
    cleanup(&torn);
    for p in &paths {
        cleanup(p);
    }
}

#[test]
fn manual_range_shards_merge_too() {
    // 0-1 / 2,4 / 3,5 — non-contiguous manual shards still cover the grid.
    let spec = grid(0x51AB);
    let out = tmp("manual");
    let selections = ["0-1", "2,4", "3,5"];
    let mut paths = Vec::new();
    for sel in selections {
        let shard = ShardSelection::parse(sel).expect("parse");
        let path = shard_store_path(&out, &shard);
        cleanup(&path);
        let outcome = run_campaign(
            &spec,
            &path,
            &RunConfig {
                shard: Some(shard),
                ..RunConfig::default()
            },
        )
        .expect("manual shard run");
        assert_eq!(outcome.cells_total, 2);
        paths.push(path);
    }
    let single = tmp("manual-single");
    cleanup(&single);
    run_campaign(&spec, &single, &RunConfig::default()).expect("single-host run");

    let merged = tmp("manual-merged");
    cleanup(&merged);
    merge_stores(&paths, &merged, Some(&spec.header())).expect("merge");
    assert_eq!(
        std::fs::read(&merged).expect("read merged"),
        std::fs::read(&single).expect("read single"),
        "manual-range shards must merge byte-identically too"
    );

    cleanup(&single);
    cleanup(&merged);
    for p in &paths {
        cleanup(p);
    }
}

//! Telemetry is observation-only: a campaign run with progress lines, a
//! JSONL sink, or both produces a result store **byte-identical** to a run
//! with telemetry off — at every thread count. Also pins the sink's schema
//! (the file `stabcon telemetry check` accepts) and the single-place fold
//! of network totals into the registry's `net_*` counters.

use std::path::PathBuf;

use proptest::prelude::*;
use stabcon_core::engine::{EngineSpec, MessageConfig, ScenarioSpec};
use stabcon_exp::campaign::{run_campaign, CampaignSpec, RunConfig};
use stabcon_exp::telemetry::{check_telemetry, load_timings};
use stabcon_exp::InitSpec;

const THREAD_CHOICES: [usize; 3] = [1, 2, 8];

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("stabcon-telemetry-props");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir.join(format!("{}-{tag}.jsonl", std::process::id()))
}

/// 6 cells mixing the dense and message engines (so the net_* counters and
/// the Route/Faults phases are exercised), with a faulted scenario for the
/// message cells: per init, dense×clean, message×clean, message×lossy.
fn grid(seed: u64) -> CampaignSpec {
    CampaignSpec {
        name: "tel-prop".into(),
        seed,
        trials: 5,
        ns: vec![64],
        inits: vec![InitSpec::TwoBinsHalf, InitSpec::UniformRandom(4)],
        engines: vec![
            EngineSpec::DenseSeq,
            EngineSpec::Message(MessageConfig::default()),
        ],
        scenarios: vec![
            ScenarioSpec::clean(),
            ScenarioSpec::clean()
                .with_drop_per_mille(50)
                .with_latency(1, 2),
        ],
        ..CampaignSpec::default()
    }
}

const GRID_CELLS: u64 = 6;
/// Cell ids of the message×lossy cells in [`grid`]'s expansion order.
const LOSSY_CELLS: [u64; 2] = [2, 5];

fn cleanup(store: &PathBuf) {
    std::fs::remove_file(store).ok();
    std::fs::remove_file(stabcon_exp::telemetry::timings_path(store)).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn store_is_byte_identical_with_telemetry_on_or_off(
        seed in 0u64..1_000,
        t_off in 0usize..3,
        t_on in 0usize..3,
    ) {
        let spec = grid(seed);
        let tag = format!("{seed}-{t_off}-{t_on}");

        let off_path = tmp(&format!("off-{tag}"));
        cleanup(&off_path);
        run_campaign(&spec, &off_path, &RunConfig {
            threads: THREAD_CHOICES[t_off],
            ..RunConfig::default()
        }).expect("telemetry-off run");
        let reference = std::fs::read(&off_path).expect("read store");

        let on_path = tmp(&format!("on-{tag}"));
        let sink = tmp(&format!("sink-{tag}"));
        cleanup(&on_path);
        run_campaign(&spec, &on_path, &RunConfig {
            threads: THREAD_CHOICES[t_on],
            progress: true,
            telemetry: Some(sink.clone()),
            ..RunConfig::default()
        }).expect("telemetry-on run");
        let bytes = std::fs::read(&on_path).expect("read store");

        prop_assert_eq!(
            &bytes, &reference,
            "store differs with telemetry on (threads {} vs {})",
            THREAD_CHOICES[t_on], THREAD_CHOICES[t_off]
        );

        // While we have a sink: it must satisfy its own schema.
        let check = check_telemetry(&sink).expect("valid telemetry sink");
        prop_assert_eq!(check.cell_profiles, GRID_CELLS, "one profile per cell");

        cleanup(&off_path);
        cleanup(&on_path);
        std::fs::remove_file(&sink).ok();
    }
}

#[test]
fn telemetry_profiles_fold_net_totals_once() {
    // A message-engine campaign's profile must carry the network totals the
    // store's observer-free cells otherwise discard; `fold_net_totals` in
    // `stabcon_exp::aggregate` is the single mapping under test.
    let spec = grid(0xF01D);
    let path = tmp("fold-net");
    let sink = tmp("fold-net-sink");
    cleanup(&path);
    let outcome = run_campaign(
        &spec,
        &path,
        &RunConfig {
            threads: 2,
            telemetry: Some(sink.clone()),
            ..RunConfig::default()
        },
    )
    .expect("run");
    assert!(outcome.complete());
    assert_eq!(outcome.profiles.len(), GRID_CELLS as usize);

    // The message×lossy cells' sink records must show the scenario's
    // traffic and faults (dense cells have no network at all).
    let text = std::fs::read_to_string(&sink).expect("read sink");
    let mut seen_traffic = false;
    for line in text.lines() {
        let obj = stabcon_util::jsonl::parse_flat(line).expect("flat record");
        let get_u64 = |k: &str| {
            stabcon_util::jsonl::get(&obj, k).and_then(stabcon_util::jsonl::JsonScalar::as_u64)
        };
        if get_u64("cell").is_some_and(|c| LOSSY_CELLS.contains(&c))
            && stabcon_util::jsonl::get(&obj, "record")
                .and_then(stabcon_util::jsonl::JsonScalar::as_str)
                == Some("cell_profile")
        {
            let requests = get_u64("net_requests").expect("net_requests");
            let delivered = get_u64("net_delivered").expect("net_delivered");
            let link_dropped = get_u64("net_link_dropped").expect("net_link_dropped");
            let in_flight = get_u64("net_in_flight_peak").expect("net_in_flight_peak");
            assert!(requests > 0, "message cells make requests");
            assert!(delivered > 0 && delivered < requests, "lossy scenario");
            assert!(link_dropped > 0, "5% drop rate must surface");
            assert!(in_flight > 0, "latency ring holds messages");
            seen_traffic = true;
        }
    }
    assert!(seen_traffic, "no message-cell profile in sink:\n{text}");

    // Satellite: the timings sidecar has one entry per cell, and the
    // report joins it without touching the store.
    let timings = load_timings(&path);
    assert_eq!(timings.len(), GRID_CELLS as usize);
    let loaded = stabcon_exp::store::load(&path).expect("load store");
    let table = stabcon_exp::report::report_table_with_timings(&loaded, Some(&timings));
    let rendered = table.to_text();
    assert!(rendered.contains("trials/s"), "{rendered}");

    cleanup(&path);
    std::fs::remove_file(&sink).ok();
}

//! Anonymous private numbering via format-preserving permutations.
//!
//! The paper's network is anonymous: "no unique process IDs are known, but
//! rather each process has its own, private numbering of the other
//! processes". Materializing `n` permutations of `[n]` would cost `O(n²)`
//! memory, so each process instead owns a keyed **Feistel permutation** over
//! `[0, n)`: a 4-round balanced Feistel network on the smallest even-width
//! binary domain covering `n`, with cycle-walking to stay inside `[0, n)`.
//!
//! Because π is a bijection, drawing a uniform *local* index and mapping it
//! through π yields a uniform *global* process — exactly the sampling the
//! median rule needs — while the simulation faithfully represents "private
//! numbering" semantics (two processes' numberings are unrelated).

use stabcon_util::rng::hash3;

/// A keyed permutation over `[0, n)` (4-round Feistel + cycle walking).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeistelPerm {
    n: u64,
    key: u64,
    /// Bits per half-domain; total domain is `2^(2·half_bits) ≥ n`.
    half_bits: u32,
}

const ROUNDS: u64 = 4;

impl FeistelPerm {
    /// Permutation over `[0, n)` keyed by `key`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `n > 2^62`.
    pub fn new(n: u64, key: u64) -> Self {
        assert!(n > 0, "FeistelPerm: empty domain");
        assert!(n <= 1 << 62, "FeistelPerm: domain too large");
        // Smallest even bit-width covering n.
        let bits = (64 - (n - 1).leading_zeros()).max(2);
        let bits = bits + (bits & 1); // round up to even
        Self {
            n,
            key,
            half_bits: bits / 2,
        }
    }

    /// Domain size.
    #[inline]
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Whether the domain is empty (never true).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    #[inline]
    fn round_fn(&self, round: u64, half: u64) -> u64 {
        hash3(self.key, round, half) & ((1 << self.half_bits) - 1)
    }

    #[inline]
    fn encrypt_once(&self, x: u64) -> u64 {
        let mask = (1u64 << self.half_bits) - 1;
        let mut left = x >> self.half_bits;
        let mut right = x & mask;
        for r in 0..ROUNDS {
            let next_left = right;
            let next_right = left ^ self.round_fn(r, right);
            left = next_left;
            right = next_right & mask;
        }
        (left << self.half_bits) | right
    }

    /// Apply the permutation: local index → global index.
    ///
    /// # Panics
    /// Debug-panics if `local ≥ n`.
    #[inline]
    pub fn apply(&self, local: u64) -> u64 {
        debug_assert!(local < self.n);
        // Cycle walking: iterate the cipher until the image lands in [0, n).
        // The expected number of steps is domain/n < 4.
        let mut x = self.encrypt_once(local);
        while x >= self.n {
            x = self.encrypt_once(x);
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_bijection(n: u64, key: u64) {
        let perm = FeistelPerm::new(n, key);
        let mut seen = vec![false; n as usize];
        for i in 0..n {
            let img = perm.apply(i);
            assert!(img < n, "image out of range");
            assert!(!seen[img as usize], "collision at {img} (n={n}, key={key})");
            seen[img as usize] = true;
        }
    }

    #[test]
    fn bijective_small_domains() {
        for n in 1..=64u64 {
            assert_bijection(n, 0xDEAD_BEEF ^ n);
        }
    }

    #[test]
    fn bijective_awkward_sizes() {
        for &n in &[65u64, 100, 127, 128, 129, 1000, 4096, 5000] {
            assert_bijection(n, 42);
        }
    }

    #[test]
    fn different_keys_differ() {
        let n = 1000;
        let a = FeistelPerm::new(n, 1);
        let b = FeistelPerm::new(n, 2);
        let same = (0..n).filter(|&i| a.apply(i) == b.apply(i)).count();
        // Random permutations agree on ~1 point on average.
        assert!(
            same < 20,
            "permutations too similar: {same} fixed agreements"
        );
    }

    #[test]
    fn deterministic() {
        let p = FeistelPerm::new(777, 99);
        let first: Vec<u64> = (0..777).map(|i| p.apply(i)).collect();
        let second: Vec<u64> = (0..777).map(|i| p.apply(i)).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn images_look_uniformly_spread() {
        // The mean image of 0..n under a random permutation is (n-1)/2.
        let n = 10_000u64;
        let p = FeistelPerm::new(n, 7);
        let sample_mean: f64 = (0..200).map(|i| p.apply(i) as f64).sum::<f64>() / 200.0;
        let expect = (n - 1) as f64 / 2.0;
        // se of mean of 200 uniform draws over [0,n): n/sqrt(12*200) ≈ 204.
        assert!(
            (sample_mean - expect).abs() < 5.0 * 204.0,
            "mean {sample_mean} vs {expect}"
        );
    }

    #[test]
    #[should_panic]
    fn zero_domain_panics() {
        FeistelPerm::new(0, 1);
    }
}

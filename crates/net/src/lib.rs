//! # stabcon-net
//!
//! Synchronous anonymous message-passing network simulator — the
//! communication model of *Stabilizing Consensus with the Power of Two
//! Choices* (§1.1 of the paper):
//!
//! * `n` processes, completely interconnected, **anonymous**: no global ids;
//!   each process holds a private numbering of the others (modelled by a
//!   per-process format-preserving permutation, [`anonymity::FeistelPerm`]);
//! * time proceeds in synchronized rounds; per round every process contacts
//!   at most a logarithmic number of other processes and exchanges a
//!   logarithmic amount of information;
//! * a process with **more than a logarithmic number of requests** directed
//!   to it answers only a logarithmic number of them, *possibly selected by
//!   an adversary*, and the rest are dropped ([`policy::DropPolicy`]).
//!
//! The crate is value-agnostic: it moves `(requester, value)` pairs and
//! reports delivery metrics. Protocol logic (what to do with the responses)
//! lives in `stabcon-core`'s message engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anonymity;
pub mod network;
pub mod policy;
pub mod scenario;

pub use anonymity::FeistelPerm;
pub use network::{log_inbox_cap, run_round, RoundConfig, RoundMetrics};
pub use policy::{DropPolicy, KeepFirst, RandomDrop, StarveSet};
pub use scenario::{ChurnSpec, NetScenario, PartitionSpec, Rejoin, ScenarioSpec};

/// Process identifier inside one simulated network (dense `0..n`).
pub type ProcessId = u32;

//! The synchronous round executor: requests → inbox capping → responses.

use rand::RngCore;

use crate::policy::DropPolicy;
use crate::ProcessId;

/// Static per-round network parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundConfig {
    /// Maximum number of requests a process answers per round (the paper's
    /// "logarithmic number"). Use [`log_inbox_cap`] for the canonical value.
    pub inbox_cap: usize,
    /// Whether a request to oneself is answered locally without consuming
    /// network capacity (the median rule's self-sample needs no message).
    pub self_bypass: bool,
}

impl RoundConfig {
    /// Canonical config for an `n`-process network: cap `c·⌈log₂ n⌉`,
    /// self-samples bypass the network.
    pub fn logarithmic(n: usize, c: usize) -> Self {
        Self {
            inbox_cap: log_inbox_cap(n, c),
            self_bypass: true,
        }
    }
}

/// The canonical logarithmic inbox cap `max(1, c·⌈log₂ n⌉)`.
pub fn log_inbox_cap(n: usize, c: usize) -> usize {
    let log = usize::BITS - n.max(2).next_power_of_two().leading_zeros() - 1;
    (c * log as usize).max(1)
}

/// Delivery statistics for one round.
///
/// The baseline [`run_round`] path fills the first six fields; the
/// fault-injection fields added with [`crate::scenario::NetScenario`] —
/// `link_dropped`, `partition_dropped`, `forged`, and `in_flight` — are
/// only nonzero under a scenario's routed path. All fields are additive
/// under [`RoundMetrics::absorb`] except `max_inbox` and `in_flight`,
/// which absorb as peaks. Campaign telemetry folds an experiment's totals
/// into its registry in exactly one place,
/// `stabcon_exp::aggregate::fold_net_totals`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundMetrics {
    /// Requests entering the network (excludes self-bypassed ones).
    pub requests: u64,
    /// Requests answered locally (self-samples with `self_bypass`).
    pub self_requests: u64,
    /// Responses delivered.
    pub delivered: u64,
    /// Requests dropped by overloaded inboxes.
    pub dropped: u64,
    /// Largest inbox observed this round.
    pub max_inbox: usize,
    /// Number of processes whose inbox exceeded the cap.
    pub overloaded: u64,
    /// Message legs lost on the link itself (scenario drop rate or a crashed
    /// endpoint), independent of inbox overflow. Always 0 in [`run_round`].
    pub link_dropped: u64,
    /// Message legs lost to an active partition cut. Always 0 in
    /// [`run_round`].
    pub partition_dropped: u64,
    /// Responses whose value was forged by a Byzantine responder. Always 0
    /// in [`run_round`].
    pub forged: u64,
    /// Messages still queued in the scenario's delay rings at the end of the
    /// round. Always 0 in [`run_round`].
    pub in_flight: u64,
}

impl RoundMetrics {
    /// Accumulate another round's metrics (for experiment totals).
    pub fn absorb(&mut self, other: &RoundMetrics) {
        self.requests += other.requests;
        self.self_requests += other.self_requests;
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.max_inbox = self.max_inbox.max(other.max_inbox);
        self.overloaded += other.overloaded;
        self.link_dropped += other.link_dropped;
        self.partition_dropped += other.partition_dropped;
        self.forged += other.forged;
        // Peak, not sum: "how deep did the delay queue get".
        self.in_flight = self.in_flight.max(other.in_flight);
    }
}

/// Execute one synchronous request/response round.
///
/// * `values[i]` — the value process `i` would report this round;
/// * `targets` — flattened sample targets, `k` consecutive entries per
///   process (`targets.len() == k·n`); entry `targets[i·k + j]` is the j-th
///   process that requester `i` contacts;
/// * `policy` — drop selection for overloaded inboxes;
/// * `responses[i]` receives `(responder, value)` pairs for every answered
///   request of process `i` (buffers are cleared and reused).
///
/// Returns per-round delivery metrics.
///
/// # Panics
/// Panics if the shapes disagree (`targets.len() != values.len()·k`,
/// `responses.len() != values.len()`) or a target id is out of range.
pub fn run_round<V, P, R>(
    values: &[V],
    targets: &[ProcessId],
    k: usize,
    cfg: &RoundConfig,
    policy: &mut P,
    rng: &mut R,
    responses: &mut [Vec<(ProcessId, V)>],
) -> RoundMetrics
where
    V: Copy,
    P: DropPolicy + ?Sized,
    R: RngCore,
{
    let n = values.len();
    assert_eq!(targets.len(), n * k, "targets shape mismatch");
    assert_eq!(responses.len(), n, "responses shape mismatch");

    let mut metrics = RoundMetrics::default();
    for buf in responses.iter_mut() {
        buf.clear();
    }

    // Phase 1: route requests into inboxes.
    let mut inbox: Vec<Vec<ProcessId>> = vec![Vec::new(); n];
    for (i, window) in targets.chunks_exact(k).enumerate() {
        for &t in window {
            let t_us = t as usize;
            assert!(t_us < n, "target {t} out of range (n = {n})");
            if cfg.self_bypass && t_us == i {
                // Answer locally: deliver own value without network traffic.
                responses[i].push((t, values[t_us]));
                metrics.self_requests += 1;
            } else {
                inbox[t_us].push(i as ProcessId);
                metrics.requests += 1;
            }
        }
    }

    // Phase 2: cap overloaded inboxes via the drop policy.
    for (t, requesters) in inbox.iter_mut().enumerate() {
        metrics.max_inbox = metrics.max_inbox.max(requesters.len());
        if requesters.len() > cfg.inbox_cap {
            metrics.overloaded += 1;
            let before = requesters.len();
            policy.select(t as ProcessId, requesters, cfg.inbox_cap, rng);
            assert!(
                requesters.len() <= cfg.inbox_cap,
                "drop policy exceeded the cap"
            );
            metrics.dropped += (before - requesters.len()) as u64;
        }
    }

    // Phase 3: deliver responses.
    for (t, requesters) in inbox.iter().enumerate() {
        let value = values[t];
        for &requester in requesters {
            responses[requester as usize].push((t as ProcessId, value));
            metrics.delivered += 1;
        }
    }

    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{KeepFirst, RandomDrop};
    use stabcon_util::rng::Xoshiro256pp;

    fn fresh_responses(n: usize) -> Vec<Vec<(ProcessId, u32)>> {
        vec![Vec::new(); n]
    }

    #[test]
    fn log_cap_values() {
        assert_eq!(log_inbox_cap(2, 1), 1);
        assert_eq!(log_inbox_cap(1024, 1), 10);
        assert_eq!(log_inbox_cap(1024, 3), 30);
        assert_eq!(log_inbox_cap(1025, 1), 11); // next power of two is 2048
        assert!(log_inbox_cap(1, 1) >= 1);
    }

    #[test]
    fn all_delivered_when_under_cap() {
        let values: Vec<u32> = vec![10, 20, 30, 40];
        // Everyone asks process 0 and process 1 once: inboxes ≤ 4 ≤ cap.
        let targets: Vec<ProcessId> = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let cfg = RoundConfig {
            inbox_cap: 8,
            self_bypass: true,
        };
        let mut rng = Xoshiro256pp::seed(1);
        let mut responses = fresh_responses(4);
        let m = run_round(
            &values,
            &targets,
            2,
            &cfg,
            &mut KeepFirst,
            &mut rng,
            &mut responses,
        );
        assert_eq!(m.dropped, 0);
        // Process 0's request to 0 and process 1's request to 1 bypass.
        assert_eq!(m.self_requests, 2);
        assert_eq!(m.delivered + m.self_requests, 8);
        for (i, resp) in responses.iter().enumerate() {
            assert_eq!(resp.len(), 2, "process {i} got {resp:?}");
            assert_eq!(resp[0].1 % 10, 0);
        }
    }

    #[test]
    fn overloaded_inbox_drops_to_cap() {
        let n = 64usize;
        let values: Vec<u32> = (0..n as u32).collect();
        // Everyone sends both requests to process 0.
        let targets: Vec<ProcessId> = vec![0; n * 2];
        let cfg = RoundConfig {
            inbox_cap: 5,
            self_bypass: false,
        };
        let mut rng = Xoshiro256pp::seed(2);
        let mut responses = fresh_responses(n);
        let m = run_round(
            &values,
            &targets,
            2,
            &cfg,
            &mut RandomDrop,
            &mut rng,
            &mut responses,
        );
        assert_eq!(m.requests, (n * 2) as u64);
        assert_eq!(m.delivered, 5);
        assert_eq!(m.dropped, (n * 2 - 5) as u64);
        assert_eq!(m.overloaded, 1);
        assert_eq!(m.max_inbox, n * 2);
        let got: usize = responses.iter().map(|r| r.len()).sum();
        assert_eq!(got, 5);
    }

    #[test]
    fn self_bypass_off_routes_self_requests() {
        let values: Vec<u32> = vec![7, 8];
        let targets: Vec<ProcessId> = vec![0, 0, 1, 1]; // everyone asks self twice
        let cfg = RoundConfig {
            inbox_cap: 10,
            self_bypass: false,
        };
        let mut rng = Xoshiro256pp::seed(3);
        let mut responses = fresh_responses(2);
        let m = run_round(
            &values,
            &targets,
            2,
            &cfg,
            &mut KeepFirst,
            &mut rng,
            &mut responses,
        );
        assert_eq!(m.self_requests, 0);
        assert_eq!(m.requests, 4);
        assert_eq!(responses[0], vec![(0, 7), (0, 7)]);
    }

    #[test]
    fn responses_carry_correct_values() {
        let values: Vec<u32> = vec![100, 200, 300];
        let targets: Vec<ProcessId> = vec![1, 2, 2, 0, 0, 1];
        let cfg = RoundConfig {
            inbox_cap: 10,
            self_bypass: true,
        };
        let mut rng = Xoshiro256pp::seed(4);
        let mut responses = fresh_responses(3);
        run_round(
            &values,
            &targets,
            2,
            &cfg,
            &mut KeepFirst,
            &mut rng,
            &mut responses,
        );
        let mut r0 = responses[0].clone();
        r0.sort_unstable();
        assert_eq!(r0, vec![(1, 200), (2, 300)]);
    }

    #[test]
    fn metrics_absorb_accumulates() {
        let mut a = RoundMetrics {
            requests: 10,
            self_requests: 1,
            delivered: 8,
            dropped: 2,
            max_inbox: 4,
            overloaded: 1,
            link_dropped: 3,
            partition_dropped: 1,
            forged: 2,
            in_flight: 6,
        };
        let b = RoundMetrics {
            requests: 5,
            self_requests: 0,
            delivered: 5,
            dropped: 0,
            max_inbox: 9,
            overloaded: 0,
            link_dropped: 1,
            partition_dropped: 4,
            forged: 0,
            in_flight: 2,
        };
        a.absorb(&b);
        assert_eq!(a.requests, 15);
        assert_eq!(a.delivered, 13);
        assert_eq!(a.max_inbox, 9);
        assert_eq!(a.link_dropped, 4);
        assert_eq!(a.partition_dropped, 5);
        assert_eq!(a.forged, 2);
        // in_flight tracks the peak queue depth, not a sum.
        assert_eq!(a.in_flight, 6);
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_panics() {
        let values: Vec<u32> = vec![1, 2];
        let targets: Vec<ProcessId> = vec![0, 1, 0]; // not 2·k
        let cfg = RoundConfig {
            inbox_cap: 1,
            self_bypass: true,
        };
        let mut rng = Xoshiro256pp::seed(5);
        let mut responses = fresh_responses(2);
        run_round(
            &values,
            &targets,
            2,
            &cfg,
            &mut KeepFirst,
            &mut rng,
            &mut responses,
        );
    }
}

//! Inbox-overflow drop policies.
//!
//! When more requests arrive at a process than its logarithmic answer budget
//! allows, *someone* decides which requests are answered. The paper allows
//! this selection to be adversarial ("possibly selected by an adversary").

use rand::RngCore;
use stabcon_util::rng::gen_index;

use crate::ProcessId;

/// Decides which requesters survive when an inbox exceeds its cap.
pub trait DropPolicy {
    /// Truncate `requesters` to at most `cap` surviving requesters.
    /// `target` is the overloaded process; `rng` provides randomness for
    /// randomized policies.
    fn select(
        &mut self,
        target: ProcessId,
        requesters: &mut Vec<ProcessId>,
        cap: usize,
        rng: &mut dyn RngCore,
    );
}

/// Keep a uniformly random `cap`-subset (benign network).
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomDrop;

impl DropPolicy for RandomDrop {
    fn select(
        &mut self,
        _target: ProcessId,
        requesters: &mut Vec<ProcessId>,
        cap: usize,
        rng: &mut dyn RngCore,
    ) {
        if requesters.len() <= cap {
            return;
        }
        // Partial Fisher–Yates: place a uniform random survivor in each of
        // the first `cap` slots.
        let len = requesters.len();
        for i in 0..cap {
            let j = i + gen_index(rng, (len - i) as u64) as usize;
            requesters.swap(i, j);
        }
        requesters.truncate(cap);
    }
}

/// Keep the first `cap` requesters in arrival order (deterministic FIFO; in
/// the synchronous abstraction arrival order is requester-id order).
#[derive(Debug, Clone, Copy, Default)]
pub struct KeepFirst;

impl DropPolicy for KeepFirst {
    fn select(
        &mut self,
        _target: ProcessId,
        requesters: &mut Vec<ProcessId>,
        cap: usize,
        _rng: &mut dyn RngCore,
    ) {
        requesters.truncate(cap);
    }
}

/// Adversarial selection: requests from *victims* are dropped first, so a
/// starved process systematically loses its samples. This implements the
/// paper's "selected by an adversary" clause.
#[derive(Debug, Clone)]
pub struct StarveSet {
    /// `victim[i]` marks process `i` as a victim whose requests are dropped
    /// with highest priority.
    victim: Vec<bool>,
}

impl StarveSet {
    /// Build from a victim bitmap sized `n`.
    pub fn new(victim: Vec<bool>) -> Self {
        Self { victim }
    }

    /// Mark the first `k` processes as victims in a network of `n`.
    pub fn first_k(n: usize, k: usize) -> Self {
        let mut victim = vec![false; n];
        for flag in victim.iter_mut().take(k.min(n)) {
            *flag = true;
        }
        Self { victim }
    }

    /// Whether `p` is a victim.
    pub fn is_victim(&self, p: ProcessId) -> bool {
        self.victim.get(p as usize).copied().unwrap_or(false)
    }
}

impl DropPolicy for StarveSet {
    fn select(
        &mut self,
        _target: ProcessId,
        requesters: &mut Vec<ProcessId>,
        cap: usize,
        _rng: &mut dyn RngCore,
    ) {
        if requesters.len() <= cap {
            return;
        }
        // Stable partition: non-victims first, victims last, then truncate —
        // victims are served only with leftover capacity.
        requesters.sort_by_key(|&p| self.is_victim(p));
        requesters.truncate(cap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stabcon_util::rng::Xoshiro256pp;

    fn reqs(ids: &[u32]) -> Vec<ProcessId> {
        ids.to_vec()
    }

    #[test]
    fn random_drop_respects_cap_and_membership() {
        let mut rng = Xoshiro256pp::seed(1);
        let mut policy = RandomDrop;
        let original = reqs(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut r = original.clone();
        policy.select(0, &mut r, 3, &mut rng);
        assert_eq!(r.len(), 3);
        for id in &r {
            assert!(original.contains(id));
        }
        // No duplicates introduced.
        let mut sorted = r.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
    }

    #[test]
    fn random_drop_noop_under_cap() {
        let mut rng = Xoshiro256pp::seed(2);
        let mut policy = RandomDrop;
        let mut r = reqs(&[5, 6]);
        policy.select(0, &mut r, 10, &mut rng);
        assert_eq!(r, reqs(&[5, 6]));
    }

    #[test]
    fn random_drop_is_roughly_uniform() {
        let mut rng = Xoshiro256pp::seed(3);
        let mut policy = RandomDrop;
        let mut hits = [0u32; 10];
        for _ in 0..20_000 {
            let mut r: Vec<ProcessId> = (0..10).collect();
            policy.select(0, &mut r, 1, &mut rng);
            hits[r[0] as usize] += 1;
        }
        for (i, &h) in hits.iter().enumerate() {
            assert!((h as i64 - 2000).abs() < 400, "requester {i}: {h}");
        }
    }

    #[test]
    fn keep_first_truncates_in_order() {
        let mut rng = Xoshiro256pp::seed(4);
        let mut policy = KeepFirst;
        let mut r = reqs(&[9, 8, 7, 6]);
        policy.select(0, &mut r, 2, &mut rng);
        assert_eq!(r, reqs(&[9, 8]));
    }

    #[test]
    fn starve_set_drops_victims_first() {
        let mut rng = Xoshiro256pp::seed(5);
        let mut policy = StarveSet::first_k(10, 5); // victims 0..5
        let mut r = reqs(&[0, 1, 6, 7, 2, 8]);
        policy.select(3, &mut r, 3, &mut rng);
        assert_eq!(r.len(), 3);
        // All survivors must be non-victims (there were exactly 3).
        for id in &r {
            assert!(!policy.is_victim(*id), "victim {id} survived");
        }
    }

    #[test]
    fn starve_set_serves_victims_with_leftover_capacity() {
        let mut rng = Xoshiro256pp::seed(6);
        let mut policy = StarveSet::first_k(10, 5);
        let mut r = reqs(&[0, 1, 6]); // 2 victims, 1 non-victim
        policy.select(3, &mut r, 2, &mut rng);
        assert_eq!(r.len(), 2);
        assert!(r.contains(&6));
    }
}

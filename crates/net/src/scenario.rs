//! Deterministic network-fault injection: latency, link drops, partitions,
//! churn, and Byzantine response forging as a layer under the round executor.
//!
//! [`run_round`](crate::run_round) models the paper's clean synchronous
//! network: every request sent in round `r` is answered (or capped) in round
//! `r`. A [`NetScenario`] routes the same request/response traffic through a
//! hostile network instead:
//!
//! * **latency** — every message leg draws a delivery delay from a seeded
//!   uniform range and sits in an in-flight ring until its round comes up,
//!   so rounds are no longer lossless-synchronous;
//! * **link drops** — each leg is lost with a configured probability,
//!   independent of inbox overflow;
//! * **partitions** — during a scheduled window, messages crossing the cut
//!   are lost; the partition heals at a fixed round;
//! * **churn** — a seeded subset of processes crashes for a scheduled
//!   window: they send nothing, answer nothing, and receive nothing, then
//!   rejoin at their pre-crash value or an adversary-chosen one;
//! * **Byzantine responders** — a seeded subset forges the *value* of every
//!   response it sends (mutation at the message boundary, not a state
//!   write), while behaving correctly as a requester.
//!
//! Every fault decision is keyed by counter-RNG coordinates
//! (`hash3`-style: seed → per-round stream → per-message counter), never by
//! draw order, so a scenario replays bit-identically for any thread count,
//! chunking, or workspace reuse — the same contract the dense engine makes.
//! The **zero-fault scenario routes bit-identically to
//! [`run_round`](crate::run_round)**: no fault consumes randomness unless
//! its knob is enabled, and the queue discipline preserves the synchronous
//! executor's delivery order (pinned by tests here and in `stabcon-core`).

use rand::RngCore;

use stabcon_util::rng::{CounterKey, CounterStream};

use crate::anonymity::FeistelPerm;
use crate::network::{RoundConfig, RoundMetrics};
use crate::policy::DropPolicy;
use crate::ProcessId;

/// Partition schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionSpec {
    /// No partition.
    #[default]
    None,
    /// Split the network into `[0, ⌊n·left_per_mille/1000⌋)` and the rest
    /// for rounds `from ≤ r < heal`; messages crossing the cut are lost.
    Split {
        /// Left-group size as a fraction of `n`, in thousandths.
        left_per_mille: u16,
        /// First partitioned round.
        from: u32,
        /// First healed round (exclusive end of the window).
        heal: u32,
    },
}

/// What value a crashed process holds when it rejoins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejoin {
    /// Keep the value held at crash time (crash-recovery with stable
    /// storage).
    PreCrash,
    /// Re-enter at the adversary's choice: the smallest value currently
    /// held by any process, i.e. the choice that keeps a minority value
    /// alive as long as possible against the median rule's drift.
    Adversarial,
}

/// Churn schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChurnSpec {
    /// No churn.
    #[default]
    None,
    /// A seeded pseudo-random subset of `count` processes is down for
    /// rounds `from ≤ r < until`, then rejoins per [`Rejoin`].
    CrashWindow {
        /// Number of crashed processes (clamped to `n`).
        count: u32,
        /// First down round.
        from: u32,
        /// First rejoined round (exclusive end of the window).
        until: u32,
        /// Rejoin value policy.
        rejoin: Rejoin,
    },
}

/// A complete fault-injection configuration. `Copy + Eq` so it can ride in
/// engine configs, key workspace reuse, and label campaign grid cells.
///
/// The default is the **zero-fault** scenario, which routes bit-identically
/// to the plain synchronous executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScenarioSpec {
    /// Minimum per-leg delivery delay in rounds.
    pub latency_min: u16,
    /// Maximum per-leg delivery delay in rounds (0 = synchronous).
    pub latency_max: u16,
    /// Per-leg loss probability in thousandths (0 = lossless links).
    pub drop_per_mille: u16,
    /// Partition schedule.
    pub partition: PartitionSpec,
    /// Churn schedule.
    pub churn: ChurnSpec,
    /// Number of Byzantine responders (0 = none); the subset is seeded.
    pub byzantine: u32,
}

impl ScenarioSpec {
    /// The zero-fault scenario (alias for `Default`).
    pub fn clean() -> Self {
        Self::default()
    }

    /// Set a uniform per-leg delay range `[min, max]` rounds.
    pub fn with_latency(mut self, min: u16, max: u16) -> Self {
        self.latency_min = min;
        self.latency_max = max;
        self
    }

    /// Set the per-leg loss probability in thousandths.
    pub fn with_drop_per_mille(mut self, per_mille: u16) -> Self {
        self.drop_per_mille = per_mille;
        self
    }

    /// Schedule a partition for rounds `from ≤ r < heal`.
    pub fn with_partition(mut self, left_per_mille: u16, from: u32, heal: u32) -> Self {
        self.partition = PartitionSpec::Split {
            left_per_mille,
            from,
            heal,
        };
        self
    }

    /// Schedule a crash window for `count` seeded processes.
    pub fn with_churn(mut self, count: u32, from: u32, until: u32, rejoin: Rejoin) -> Self {
        self.churn = ChurnSpec::CrashWindow {
            count,
            from,
            until,
            rejoin,
        };
        self
    }

    /// Mark `count` seeded processes as Byzantine responders.
    pub fn with_byzantine(mut self, count: u32) -> Self {
        self.byzantine = count;
        self
    }

    /// Whether every fault knob is off (routes identically to
    /// [`run_round`](crate::run_round)).
    pub fn is_zero_fault(&self) -> bool {
        *self == Self::default()
    }

    /// Whether full consensus is an absorbing state under this scenario.
    ///
    /// Drops, partitions, churn, and the min-value Byzantine forger all
    /// relay values *currently held* by some process, so once everyone
    /// agrees every message (and every forgery) carries the consensus
    /// value. Latency breaks that: a response still in flight can deliver
    /// a stale pre-consensus value rounds later, so runners must not treat
    /// support = 1 as final while messages may be queued.
    pub fn consensus_absorbing(&self) -> bool {
        self.latency_max == 0
    }

    /// Compact stable label for campaign tables and grid fingerprints.
    /// The zero-fault scenario is `"none"`.
    pub fn label(&self) -> String {
        if self.is_zero_fault() {
            return "none".into();
        }
        let mut parts: Vec<String> = Vec::new();
        if self.latency_max > 0 {
            parts.push(format!("lat({}-{})", self.latency_min, self.latency_max));
        }
        if self.drop_per_mille > 0 {
            parts.push(format!("drop({}‰)", self.drop_per_mille));
        }
        if let PartitionSpec::Split {
            left_per_mille,
            from,
            heal,
        } = self.partition
        {
            parts.push(format!("part({left_per_mille}‰,{from}..{heal})"));
        }
        if let ChurnSpec::CrashWindow {
            count,
            from,
            until,
            rejoin,
        } = self.churn
        {
            let r = match rejoin {
                Rejoin::PreCrash => "pre",
                Rejoin::Adversarial => "adv",
            };
            parts.push(format!("churn({count},{from}..{until},{r})"));
        }
        if self.byzantine > 0 {
            parts.push(format!("byz({})", self.byzantine));
        }
        parts.join("+")
    }

    /// Validate internal consistency (delay range ordered, windows ordered,
    /// fractions in range).
    ///
    /// # Panics
    /// Panics on an inconsistent spec; called by [`NetScenario::new`].
    pub fn validate(&self) {
        assert!(
            self.latency_min <= self.latency_max,
            "scenario: latency_min {} > latency_max {}",
            self.latency_min,
            self.latency_max
        );
        assert!(
            self.drop_per_mille <= 1000,
            "scenario: drop_per_mille {} > 1000",
            self.drop_per_mille
        );
        if let PartitionSpec::Split {
            left_per_mille,
            from,
            heal,
        } = self.partition
        {
            assert!(
                left_per_mille <= 1000,
                "scenario: left_per_mille {left_per_mille} > 1000"
            );
            assert!(
                from <= heal,
                "scenario: partition from {from} > heal {heal}"
            );
        }
        if let ChurnSpec::CrashWindow { from, until, .. } = self.churn {
            assert!(from <= until, "scenario: churn from {from} > until {until}");
        }
    }
}

/// An in-flight request: `from` asked `to` for its value.
#[derive(Debug, Clone, Copy)]
struct FlightReq {
    from: ProcessId,
    to: ProcessId,
}

/// An in-flight response carrying the answered value.
#[derive(Debug, Clone, Copy)]
struct FlightResp<V> {
    from: ProcessId,
    to: ProcessId,
    value: V,
}

/// Stream ids far outside the per-round leg-stream range (`round·2 + leg`).
const CRASH_PERM_STREAM: u64 = u64::MAX;
const BYZ_PERM_STREAM: u64 = u64::MAX - 2;

/// Request and response leg tags for the per-round fate streams.
const REQ_LEG: u64 = 0;
const RESP_LEG: u64 = 1;

/// Runtime state of one scenario for one population size.
///
/// All buffers (delay rings, inboxes, fault bitmaps) are owned here and
/// reused across rounds *and* trials: [`NetScenario::reset`] re-keys the
/// randomness and clears the queues without allocating, so a
/// workspace-parked engine stays allocation-free on the steady-state path.
#[derive(Debug, Clone)]
pub struct NetScenario<V> {
    spec: ScenarioSpec,
    key: CounterKey,
    /// Partition boundary: processes `< split_at` form the left group.
    split_at: ProcessId,
    crashed: Vec<bool>,
    byzantine: Vec<bool>,
    /// Delay rings indexed by `deliver_round % horizon`; each slot is fully
    /// drained in its round before anything with the same residue is
    /// enqueued again, so slots never mix delivery rounds.
    req_ring: Vec<Vec<FlightReq>>,
    resp_ring: Vec<Vec<FlightResp<V>>>,
    /// Per-target request inboxes (the synchronous executor allocates these
    /// per call; here they are parked for reuse).
    inboxes: Vec<Vec<ProcessId>>,
    in_flight: u64,
}

impl<V: Copy> NetScenario<V> {
    /// Build scenario state for `n` processes, keyed by `seed`.
    ///
    /// # Panics
    /// Panics if the spec is inconsistent (see [`ScenarioSpec::validate`]).
    pub fn new(n: usize, spec: ScenarioSpec, seed: u64) -> Self {
        spec.validate();
        let horizon = spec.latency_max as usize + 1;
        let split_at = match spec.partition {
            PartitionSpec::Split { left_per_mille, .. } => {
                (n as u64 * left_per_mille as u64 / 1000) as ProcessId
            }
            PartitionSpec::None => 0,
        };
        let mut out = Self {
            spec,
            key: CounterKey::new(seed),
            split_at,
            crashed: vec![false; n],
            byzantine: vec![false; n],
            req_ring: vec![Vec::new(); horizon],
            resp_ring: vec![Vec::new(); horizon],
            inboxes: vec![Vec::new(); n],
            in_flight: 0,
        };
        out.rebuild_fault_sets();
        out
    }

    /// Re-key for a fresh trial with the same `(n, spec)`: clears every
    /// queue and redraws the crash/Byzantine subsets without allocating.
    /// After this the scenario behaves exactly like [`NetScenario::new`]
    /// with `seed`.
    pub fn reset(&mut self, seed: u64) {
        self.key = CounterKey::new(seed);
        self.in_flight = 0;
        for slot in &mut self.req_ring {
            slot.clear();
        }
        for slot in &mut self.resp_ring {
            slot.clear();
        }
        for inbox in &mut self.inboxes {
            inbox.clear();
        }
        self.rebuild_fault_sets();
    }

    /// Redraw the seeded fault subsets (crash window + Byzantine set).
    /// Timed as [`stabcon_obs::Phase::Faults`]: with telemetry on, the cost
    /// of per-trial fault draws shows up next to routing in phase profiles.
    fn rebuild_fault_sets(&mut self) {
        let _t = stabcon_obs::phase(stabcon_obs::Phase::Faults);
        let n = self.inboxes.len();
        self.crashed.fill(false);
        self.byzantine.fill(false);
        if n == 0 {
            return;
        }
        if let ChurnSpec::CrashWindow { count, .. } = self.spec.churn {
            let perm = FeistelPerm::new(n as u64, self.key.stream(CRASH_PERM_STREAM).word(0));
            for i in 0..(count as u64).min(n as u64) {
                self.crashed[perm.apply(i) as usize] = true;
            }
        }
        if self.spec.byzantine > 0 {
            let perm = FeistelPerm::new(n as u64, self.key.stream(BYZ_PERM_STREAM).word(0));
            for i in 0..(self.spec.byzantine as u64).min(n as u64) {
                self.byzantine[perm.apply(i) as usize] = true;
            }
        }
    }

    /// The spec this scenario was built from.
    pub fn spec(&self) -> ScenarioSpec {
        self.spec
    }

    /// The population size this scenario was built for.
    pub fn n(&self) -> usize {
        self.inboxes.len()
    }

    /// Messages currently queued in the delay rings.
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Whether process `p` is crashed in `round`.
    pub fn is_down(&self, p: usize, round: u64) -> bool {
        match self.spec.churn {
            ChurnSpec::None => false,
            ChurnSpec::CrashWindow { from, until, .. } => {
                (from as u64..until as u64).contains(&round) && self.crashed[p]
            }
        }
    }

    /// Whether `p` spends its last down round in `round` and rejoins at an
    /// adversary-chosen value (the engine overrides its state then).
    pub fn adversarial_rejoin(&self, p: usize, round: u64) -> bool {
        match self.spec.churn {
            ChurnSpec::CrashWindow {
                from,
                until,
                rejoin: Rejoin::Adversarial,
                ..
            } => until > from && round + 1 == until as u64 && self.crashed[p],
            _ => false,
        }
    }

    /// Whether the engine must supply a forge value (global minimum) for
    /// this round: Byzantine responders always need one, and an
    /// adversarial rejoin needs one on the rejoin boundary.
    pub fn wants_forge_value(&self, round: u64) -> bool {
        if self.spec.byzantine > 0 {
            return true;
        }
        match self.spec.churn {
            ChurnSpec::CrashWindow {
                from,
                until,
                rejoin: Rejoin::Adversarial,
                ..
            } => until > from && round + 1 == until as u64,
            _ => false,
        }
    }

    /// Whether process `p` is a Byzantine responder.
    pub fn is_byzantine(&self, p: usize) -> bool {
        self.spec.byzantine > 0 && self.byzantine[p]
    }

    /// Whether a message between `a` and `b` crosses an active cut.
    fn crossing(&self, a: ProcessId, b: ProcessId, round: u64) -> bool {
        match self.spec.partition {
            PartitionSpec::None => false,
            PartitionSpec::Split { from, heal, .. } => {
                (from as u64..heal as u64).contains(&round)
                    && (a < self.split_at) != (b < self.split_at)
            }
        }
    }

    /// Per-leg fate at counter-RNG coordinates `(stream, idx)`: `None` when
    /// the leg is lost, otherwise the delivery delay in rounds. Consumes no
    /// randomness when both knobs are off (zero-fault bit-compatibility);
    /// the counter is advanced by the caller for every leg regardless, so
    /// one leg's fate never shifts another's coordinates.
    fn fate(&self, stream: CounterStream, idx: u64) -> Option<u64> {
        if self.spec.drop_per_mille == 0 && self.spec.latency_max == 0 {
            return Some(0);
        }
        let w = stream.word(idx);
        if self.spec.drop_per_mille > 0 {
            let threshold = ((self.spec.drop_per_mille as u64) << 32) / 1000;
            if (w & 0xFFFF_FFFF) < threshold {
                return None;
            }
        }
        let range = (self.spec.latency_max - self.spec.latency_min) as u64 + 1;
        Some(self.spec.latency_min as u64 + (w >> 32) % range)
    }

    /// Route one round of request/response traffic through the hostile
    /// network. The contract mirrors [`run_round`](crate::run_round) —
    /// same `targets` layout, same drop-policy hook, same response buffers
    /// — plus:
    ///
    /// * messages with a positive delay park in the delay rings and are
    ///   delivered (to inboxes / response buffers) in the round they come
    ///   due, in send order;
    /// * `forge` is the value Byzantine responders report instead of their
    ///   own (ignored when no responder is Byzantine);
    /// * crashed processes neither send, answer, nor receive.
    ///
    /// With the zero-fault spec this is bit-identical to
    /// [`run_round`](crate::run_round): same response order, same
    /// drop-policy RNG consumption, same metrics.
    ///
    /// # Panics
    /// Panics if shapes disagree with the scenario's `n` or a target id is
    /// out of range.
    #[allow(clippy::too_many_arguments)]
    pub fn route_round<P, R>(
        &mut self,
        round: u64,
        values: &[V],
        targets: &[ProcessId],
        k: usize,
        cfg: &RoundConfig,
        policy: &mut P,
        rng: &mut R,
        responses: &mut [Vec<(ProcessId, V)>],
        forge: Option<V>,
    ) -> RoundMetrics
    where
        P: DropPolicy + ?Sized,
        R: RngCore,
    {
        let n = values.len();
        assert_eq!(self.inboxes.len(), n, "scenario built for different n");
        assert_eq!(targets.len(), n * k, "targets shape mismatch");
        assert_eq!(responses.len(), n, "responses shape mismatch");

        let mut metrics = RoundMetrics::default();
        for buf in responses.iter_mut() {
            buf.clear();
        }

        // Headroom so warm buffers never grow again: per-round inbox load is
        // Binomial(n·k, 1/n) — mean k — so a 16·k capacity outlasts any max
        // load these grids can realistically produce, and `reserve` is a
        // branch once capacity is there. Without this, the balls-in-bins tail
        // keeps minting new per-process maxima (capacity 8 → 16 reallocs)
        // for thousands of trials, which the allocation gate counts.
        let headroom = 16 * k.max(2);
        for buf in self.inboxes.iter_mut() {
            buf.clear();
            buf.reserve(headroom);
        }
        for buf in responses.iter_mut() {
            buf.reserve(headroom);
        }

        let horizon = self.req_ring.len() as u64;
        let slot = (round % horizon) as usize;
        let req_fates = self.key.stream(round.wrapping_mul(2) + REQ_LEG);
        let resp_fates = self.key.stream(round.wrapping_mul(2) + RESP_LEG);

        // Phase 1: send requests (delay 0 lands in this round's slot, which
        // is drained below; longer delays land in future slots).
        let mut req_idx = 0u64;
        for (i, window) in targets.chunks_exact(k).enumerate() {
            if self.is_down(i, round) {
                continue;
            }
            for &t in window {
                let t_us = t as usize;
                assert!(t_us < n, "target {t} out of range (n = {n})");
                if cfg.self_bypass && t_us == i {
                    responses[i].push((t, values[t_us]));
                    metrics.self_requests += 1;
                    continue;
                }
                let idx = req_idx;
                req_idx += 1;
                metrics.requests += 1;
                if self.crossing(i as ProcessId, t, round) {
                    metrics.partition_dropped += 1;
                    continue;
                }
                let Some(delay) = self.fate(req_fates, idx) else {
                    metrics.link_dropped += 1;
                    continue;
                };
                let dest = ((round + delay) % horizon) as usize;
                self.req_ring[dest].push(FlightReq {
                    from: i as ProcessId,
                    to: t,
                });
                self.in_flight += 1;
            }
        }

        // Phase 2: deliver due requests into inboxes (cleared above, in send
        // order; a crashed target loses the request).
        let mut due_reqs = std::mem::take(&mut self.req_ring[slot]);
        self.in_flight -= due_reqs.len() as u64;
        for msg in &due_reqs {
            if self.is_down(msg.to as usize, round) {
                metrics.link_dropped += 1;
                continue;
            }
            self.inboxes[msg.to as usize].push(msg.from);
        }
        due_reqs.clear();
        self.req_ring[slot] = due_reqs;

        // Phase 3: cap overloaded inboxes via the drop policy (identical to
        // the synchronous executor, including RNG consumption order).
        for (t, requesters) in self.inboxes.iter_mut().enumerate() {
            metrics.max_inbox = metrics.max_inbox.max(requesters.len());
            if requesters.len() > cfg.inbox_cap {
                metrics.overloaded += 1;
                let before = requesters.len();
                policy.select(t as ProcessId, requesters, cfg.inbox_cap, rng);
                assert!(
                    requesters.len() <= cfg.inbox_cap,
                    "drop policy exceeded the cap"
                );
                metrics.dropped += (before - requesters.len()) as u64;
            }
        }

        // Phase 4: answer surviving requests. A Byzantine responder mutates
        // the value at this message boundary; its own state is untouched.
        let mut resp_idx = 0u64;
        for (t, &held) in values.iter().enumerate() {
            let byz = self.is_byzantine(t);
            let value = if byz { forge.unwrap_or(held) } else { held };
            for j in 0..self.inboxes[t].len() {
                let requester = self.inboxes[t][j];
                let idx = resp_idx;
                resp_idx += 1;
                if self.crossing(t as ProcessId, requester, round) {
                    metrics.partition_dropped += 1;
                    continue;
                }
                let Some(delay) = self.fate(resp_fates, idx) else {
                    metrics.link_dropped += 1;
                    continue;
                };
                if byz {
                    metrics.forged += 1;
                }
                let dest = ((round + delay) % horizon) as usize;
                self.resp_ring[dest].push(FlightResp {
                    from: t as ProcessId,
                    to: requester,
                    value,
                });
                self.in_flight += 1;
            }
        }

        // Phase 5: deliver due responses (send order; a crashed requester
        // loses the response).
        let mut due_resps = std::mem::take(&mut self.resp_ring[slot]);
        self.in_flight -= due_resps.len() as u64;
        for msg in &due_resps {
            if self.is_down(msg.to as usize, round) {
                metrics.link_dropped += 1;
                continue;
            }
            responses[msg.to as usize].push((msg.from, msg.value));
            metrics.delivered += 1;
        }
        due_resps.clear();
        self.resp_ring[slot] = due_resps;

        metrics.in_flight = self.in_flight;
        metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::run_round;
    use crate::policy::{KeepFirst, RandomDrop};
    use stabcon_util::rng::{hash3, Xoshiro256pp};

    fn uniform_targets(n: usize, k: usize, seed: u64) -> Vec<ProcessId> {
        (0..n * k)
            .map(|i| (hash3(seed, 7, i as u64) % n as u64) as ProcessId)
            .collect()
    }

    fn fresh_responses(n: usize) -> Vec<Vec<(ProcessId, u32)>> {
        vec![Vec::new(); n]
    }

    #[test]
    fn zero_fault_matches_run_round_bitwise() {
        let n = 128;
        let k = 2;
        let values: Vec<u32> = (0..n as u32).map(|v| v % 5).collect();
        let cfg = RoundConfig {
            inbox_cap: 3,
            self_bypass: true,
        };
        let mut scen: NetScenario<u32> = NetScenario::new(n, ScenarioSpec::clean(), 0xFA17);
        for round in 0..8u64 {
            let targets = uniform_targets(n, k, round);
            // Same policy/rng state on both sides.
            let mut rng_a = Xoshiro256pp::seed(round);
            let mut rng_b = Xoshiro256pp::seed(round);
            let mut resp_a = fresh_responses(n);
            let mut resp_b = fresh_responses(n);
            let ma = run_round(
                &values,
                &targets,
                k,
                &cfg,
                &mut RandomDrop,
                &mut rng_a,
                &mut resp_a,
            );
            let mb = scen.route_round(
                round,
                &values,
                &targets,
                k,
                &cfg,
                &mut RandomDrop,
                &mut rng_b,
                &mut resp_b,
                None,
            );
            assert_eq!(ma, mb, "round {round} metrics diverged");
            assert_eq!(resp_a, resp_b, "round {round} responses diverged");
            assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "rng streams diverged");
        }
    }

    #[test]
    fn fixed_latency_shifts_delivery_by_d_rounds() {
        let n = 16;
        let spec = ScenarioSpec::clean().with_latency(2, 2);
        let mut scen: NetScenario<u32> = NetScenario::new(n, spec, 1);
        let values: Vec<u32> = vec![7; n];
        let cfg = RoundConfig {
            inbox_cap: 64,
            self_bypass: false,
        };
        let targets: Vec<ProcessId> = (0..n).map(|i| ((i + 1) % n) as ProcessId).collect();
        let mut rng = Xoshiro256pp::seed(2);
        let mut responses = fresh_responses(n);
        // Round 0: requests depart, nothing arrives.
        let m0 = scen.route_round(
            0,
            &values,
            &targets,
            1,
            &cfg,
            &mut KeepFirst,
            &mut rng,
            &mut responses,
            None,
        );
        assert_eq!(m0.requests, n as u64);
        assert_eq!(m0.delivered, 0);
        assert_eq!(m0.in_flight, n as u64);
        // Round 1: still nothing (requests due at round 2).
        let m1 = scen.route_round(
            1,
            &values,
            &targets,
            1,
            &cfg,
            &mut KeepFirst,
            &mut rng,
            &mut responses,
            None,
        );
        assert_eq!(m1.delivered, 0);
        // Round 2: round-0 requests arrive and are answered; the answers
        // themselves take 2 more rounds.
        let m2 = scen.route_round(
            2,
            &values,
            &targets,
            1,
            &cfg,
            &mut KeepFirst,
            &mut rng,
            &mut responses,
            None,
        );
        assert_eq!(m2.delivered, 0);
        // Round 4: round-0 responses land.
        for round in 3..5u64 {
            let m = scen.route_round(
                round,
                &values,
                &targets,
                1,
                &cfg,
                &mut KeepFirst,
                &mut rng,
                &mut responses,
                None,
            );
            if round == 4 {
                assert_eq!(m.delivered, n as u64, "round-0 answers due at round 4");
            } else {
                assert_eq!(m.delivered, 0);
            }
        }
    }

    #[test]
    fn link_drops_scale_with_probability() {
        let n = 512;
        let spec = ScenarioSpec::clean().with_drop_per_mille(250);
        let mut scen: NetScenario<u32> = NetScenario::new(n, spec, 3);
        let values: Vec<u32> = vec![1; n];
        let cfg = RoundConfig {
            inbox_cap: 1024,
            self_bypass: false,
        };
        let targets = uniform_targets(n, 2, 9);
        let mut rng = Xoshiro256pp::seed(4);
        let mut responses = fresh_responses(n);
        let mut sent = 0u64;
        let mut lost = 0u64;
        for round in 0..20u64 {
            let m = scen.route_round(
                round,
                &values,
                &targets,
                2,
                &cfg,
                &mut KeepFirst,
                &mut rng,
                &mut responses,
                None,
            );
            sent += m.requests;
            lost += m.link_dropped;
        }
        // Two legs at 25% each ⇒ ≈ 43.75% of requests lose a leg; the
        // request-leg share alone is 25% of sends. Loose 5σ-ish band.
        let rate = lost as f64 / (sent as f64 * 2.0);
        assert!((0.18..0.32).contains(&rate), "per-leg loss rate {rate}");
    }

    #[test]
    fn partition_blocks_cross_traffic_until_heal() {
        let n = 64;
        let spec = ScenarioSpec::clean().with_partition(500, 0, 3);
        let mut scen: NetScenario<u32> = NetScenario::new(n, spec, 5);
        let values: Vec<u32> = vec![2; n];
        let cfg = RoundConfig {
            inbox_cap: 256,
            self_bypass: false,
        };
        // Everyone asks across the cut: i → (i + n/2) mod n.
        let targets: Vec<ProcessId> = (0..n).map(|i| ((i + n / 2) % n) as ProcessId).collect();
        let mut rng = Xoshiro256pp::seed(6);
        let mut responses = fresh_responses(n);
        for round in 0..5u64 {
            let m = scen.route_round(
                round,
                &values,
                &targets,
                1,
                &cfg,
                &mut KeepFirst,
                &mut rng,
                &mut responses,
                None,
            );
            if round < 3 {
                assert_eq!(m.partition_dropped, n as u64, "round {round}");
                assert_eq!(m.delivered, 0, "round {round}");
            } else {
                assert_eq!(m.partition_dropped, 0, "round {round}");
                assert_eq!(m.delivered, n as u64, "healed round {round}");
            }
        }
    }

    #[test]
    fn crashed_processes_neither_send_nor_answer() {
        let n = 32;
        let spec = ScenarioSpec::clean().with_churn(8, 0, 10, Rejoin::PreCrash);
        let mut scen: NetScenario<u32> = NetScenario::new(n, spec, 7);
        let down: Vec<usize> = (0..n).filter(|&p| scen.is_down(p, 0)).collect();
        assert_eq!(down.len(), 8, "seeded crash set size");
        assert!(!scen.is_down(down[0], 10), "rejoined after the window");

        let values: Vec<u32> = vec![3; n];
        let cfg = RoundConfig {
            inbox_cap: 256,
            self_bypass: false,
        };
        let targets: Vec<ProcessId> = (0..n).map(|i| ((i + 1) % n) as ProcessId).collect();
        let mut rng = Xoshiro256pp::seed(8);
        let mut responses = fresh_responses(n);
        let m = scen.route_round(
            0,
            &values,
            &targets,
            1,
            &cfg,
            &mut KeepFirst,
            &mut rng,
            &mut responses,
            None,
        );
        assert_eq!(m.requests, (n - 8) as u64, "down processes sent nothing");
        for &p in &down {
            assert!(responses[p].is_empty(), "down process {p} received");
        }
    }

    #[test]
    fn byzantine_responders_forge_the_supplied_value() {
        let n = 32;
        let spec = ScenarioSpec::clean().with_byzantine(6);
        let mut scen: NetScenario<u32> = NetScenario::new(n, spec, 9);
        assert!(scen.wants_forge_value(0));
        let byz: Vec<usize> = (0..n).filter(|&p| scen.is_byzantine(p)).collect();
        assert_eq!(byz.len(), 6);

        let values: Vec<u32> = vec![5; n];
        let cfg = RoundConfig {
            inbox_cap: 256,
            self_bypass: false,
        };
        let targets: Vec<ProcessId> = (0..n).map(|i| ((i + 1) % n) as ProcessId).collect();
        let mut rng = Xoshiro256pp::seed(10);
        let mut responses = fresh_responses(n);
        let m = scen.route_round(
            0,
            &values,
            &targets,
            1,
            &cfg,
            &mut KeepFirst,
            &mut rng,
            &mut responses,
            Some(99),
        );
        assert_eq!(m.forged, 6, "one forged response per Byzantine responder");
        let forged_seen: u64 = responses
            .iter()
            .flatten()
            .filter(|&&(from, v)| v == 99 && byz.contains(&(from as usize)))
            .count() as u64;
        assert_eq!(forged_seen, 6);
    }

    #[test]
    fn reset_replays_bit_identically() {
        let n = 96;
        let spec = ScenarioSpec::clean()
            .with_latency(0, 3)
            .with_drop_per_mille(100)
            .with_partition(300, 2, 5)
            .with_churn(10, 1, 6, Rejoin::Adversarial)
            .with_byzantine(4);
        let cfg = RoundConfig {
            inbox_cap: 4,
            self_bypass: true,
        };
        let values: Vec<u32> = (0..n as u32).collect();
        let run = |scen: &mut NetScenario<u32>| {
            let mut rng = Xoshiro256pp::seed(11);
            let mut responses = fresh_responses(n);
            let mut log = Vec::new();
            for round in 0..12u64 {
                let targets = uniform_targets(n, 2, round);
                let m = scen.route_round(
                    round,
                    &values,
                    &targets,
                    2,
                    &cfg,
                    &mut RandomDrop,
                    &mut rng,
                    &mut responses,
                    Some(0),
                );
                log.push((m, responses.clone()));
            }
            log
        };
        let mut scen: NetScenario<u32> = NetScenario::new(n, spec, 0xABCD);
        let first = run(&mut scen);
        // Dirty state, then reset with the same seed: identical replay.
        scen.reset(0xABCD);
        assert_eq!(run(&mut scen), first);
        // A different seed gives a different trace.
        scen.reset(0xABCE);
        assert_ne!(run(&mut scen), first);
    }

    #[test]
    fn labels_are_compact_and_distinct() {
        assert_eq!(ScenarioSpec::clean().label(), "none");
        let specs = [
            ScenarioSpec::clean().with_latency(1, 3),
            ScenarioSpec::clean().with_drop_per_mille(50),
            ScenarioSpec::clean().with_partition(500, 5, 40),
            ScenarioSpec::clean().with_churn(32, 5, 40, Rejoin::PreCrash),
            ScenarioSpec::clean().with_churn(32, 5, 40, Rejoin::Adversarial),
            ScenarioSpec::clean().with_byzantine(16),
            ScenarioSpec::clean().with_latency(1, 3).with_byzantine(16),
        ];
        let labels: std::collections::HashSet<String> = specs.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), specs.len(), "{labels:?}");
        for s in &specs {
            assert!(!s.is_zero_fault());
            assert_ne!(s.label(), "none");
        }
    }

    #[test]
    fn consensus_absorbing_only_without_latency() {
        assert!(ScenarioSpec::clean().consensus_absorbing());
        assert!(ScenarioSpec::clean()
            .with_drop_per_mille(500)
            .with_byzantine(8)
            .consensus_absorbing());
        assert!(!ScenarioSpec::clean()
            .with_latency(0, 1)
            .consensus_absorbing());
    }

    #[test]
    #[should_panic]
    fn inverted_latency_range_is_rejected() {
        let _ = NetScenario::<u32>::new(8, ScenarioSpec::clean().with_latency(3, 1), 0);
    }
}

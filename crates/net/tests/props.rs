//! Property-based tests for the network model.

use proptest::prelude::*;
use stabcon_net::{
    log_inbox_cap, run_round, FeistelPerm, KeepFirst, ProcessId, RandomDrop, RoundConfig, StarveSet,
};
use stabcon_util::rng::Xoshiro256pp;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn feistel_is_a_bijection(n in 1u64..2000, key in any::<u64>()) {
        let perm = FeistelPerm::new(n, key);
        let mut seen = vec![false; n as usize];
        for i in 0..n {
            let img = perm.apply(i);
            prop_assert!(img < n);
            prop_assert!(!seen[img as usize], "collision at {}", img);
            seen[img as usize] = true;
        }
    }

    #[test]
    fn inbox_cap_formula_monotone(n in 2usize..1_000_000, c in 1usize..8) {
        let cap = log_inbox_cap(n, c);
        prop_assert!(cap >= 1);
        prop_assert!(log_inbox_cap(n, c + 1) >= cap);
        prop_assert!(log_inbox_cap(n * 2, c) >= cap);
    }

    #[test]
    fn round_conserves_messages(seed in any::<u64>(), n in 2usize..64, cap in 1usize..16) {
        // Random target pattern: every process sends k = 2 requests.
        let mut rng = Xoshiro256pp::seed(seed);
        let values: Vec<u32> = (0..n as u32).collect();
        let targets: Vec<ProcessId> = (0..n * 2)
            .map(|_| stabcon_util::rng::gen_index(&mut rng, n as u64) as ProcessId)
            .collect();
        let cfg = RoundConfig { inbox_cap: cap, self_bypass: true };
        let mut responses = vec![Vec::new(); n];
        let m = run_round(&values, &targets, 2, &cfg, &mut RandomDrop, &mut rng, &mut responses);
        prop_assert_eq!(m.delivered + m.dropped, m.requests);
        prop_assert_eq!(m.requests + m.self_requests, (n * 2) as u64);
        let received: u64 = responses.iter().map(|r| r.len() as u64).sum();
        prop_assert_eq!(received, m.delivered + m.self_requests);
    }

    #[test]
    fn no_inbox_exceeds_cap(seed in any::<u64>(), n in 2usize..64, cap in 1usize..8) {
        // Adversarial pattern: everyone floods process 0.
        let values: Vec<u32> = vec![7; n];
        let targets: Vec<ProcessId> = vec![0; n * 2];
        let cfg = RoundConfig { inbox_cap: cap, self_bypass: false };
        let mut rng = Xoshiro256pp::seed(seed);
        let mut responses = vec![Vec::new(); n];
        let m = run_round(&values, &targets, 2, &cfg, &mut KeepFirst, &mut rng, &mut responses);
        prop_assert!(m.delivered <= cap as u64);
        let received: usize = responses.iter().map(|r| r.len()).sum();
        prop_assert!(received <= cap);
    }

    #[test]
    fn responses_always_carry_responder_value(seed in any::<u64>(), n in 2usize..48) {
        let mut rng = Xoshiro256pp::seed(seed);
        let values: Vec<u32> = (0..n as u32).map(|i| i * 100).collect();
        let targets: Vec<ProcessId> = (0..n * 2)
            .map(|_| stabcon_util::rng::gen_index(&mut rng, n as u64) as ProcessId)
            .collect();
        let cfg = RoundConfig { inbox_cap: n, self_bypass: true };
        let mut responses = vec![Vec::new(); n];
        run_round(&values, &targets, 2, &cfg, &mut RandomDrop, &mut rng, &mut responses);
        for resp in &responses {
            for &(who, v) in resp {
                prop_assert_eq!(v, values[who as usize]);
            }
        }
    }

    #[test]
    fn starve_set_victims_lose_first(seed in any::<u64>(), n in 8usize..48, victims in 1usize..8) {
        // All processes request process 0; victims' requests must be the
        // dropped ones whenever non-victim demand covers the cap.
        let values: Vec<u32> = vec![1; n];
        let targets: Vec<ProcessId> = vec![0; n]; // k = 1
        let cap = (n - victims).clamp(1, 4);
        let cfg = RoundConfig { inbox_cap: cap, self_bypass: false };
        let mut rng = Xoshiro256pp::seed(seed);
        let mut policy = StarveSet::first_k(n, victims);
        let mut responses = vec![Vec::new(); n];
        run_round(&values, &targets, 1, &cfg, &mut policy, &mut rng, &mut responses);
        // Victims (processes 0..victims) must have received nothing, since
        // there were ≥ cap non-victim requesters.
        for (i, resp) in responses.iter().enumerate().take(victims) {
            prop_assert!(resp.is_empty(), "victim {} was served: {:?}", i, resp);
        }
    }
}

//! # stabcon-obs
//!
//! Allocation-free telemetry for the `stabcon` workspace: a per-worker
//! [`MetricRegistry`] of fixed-slot counters, gauges, and power-of-2-bucket
//! duration histograms, plus phase timers that the engines drop into their
//! hot loops.
//!
//! ## Design
//!
//! * **Observation-only.** Nothing here feeds back into simulation state,
//!   RNG streams, or aggregation order — campaign stores are byte-identical
//!   with telemetry on or off, at any thread count (property-tested in
//!   `stabcon-exp`).
//! * **Off by default, no-op when off.** A single global flag
//!   ([`set_enabled`]) gates every instrumentation point. When disabled,
//!   [`phase`] and [`hist_record`] reduce to one relaxed load and a
//!   predicted branch — no clock reads, no thread-local traffic — so the
//!   dense kernel's per-block phases stay untouched on the default path.
//! * **Zero steady-state allocation.** The registry's slots, the
//!   thread-local accumulators, and [`Snapshot`] buffers are all fixed-size
//!   and allocated up front; recording and draining are plain stores and
//!   relaxed atomic adds. This is the same discipline the workspace's
//!   `alloc_regression` gate pins for trials, and telemetry-enabled trials
//!   are held to it too.
//! * **Lock-free per-worker slots.** Each worker owns a cache-line-aligned
//!   [`WorkerSlot`]; recording never contends. A [`Snapshot`] merge reads
//!   every slot with relaxed loads — cheap enough to drive live progress
//!   lines and the JSONL telemetry sink while a campaign runs.
//!
//! ## Flow
//!
//! Engines record *phases* ([`Phase`]) into a thread-local accumulator via
//! RAII [`PhaseGuard`]s; trial/chunk durations go to thread-local
//! histograms via [`hist_record`]. The experiment scheduler's workers hold a
//! [`WorkerHandle`] and periodically [`WorkerHandle::drain_local`] the
//! thread-local sums into their registry slot, alongside direct counter and
//! gauge updates. Anything with a `&MetricRegistry` can then
//! [`MetricRegistry::snapshot_into`] a reusable [`Snapshot`] and render or
//! serialize it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Metric identifiers: fixed slots, stable names.
// ---------------------------------------------------------------------------

/// A timed phase of the simulation pipeline. Each variant is a fixed slot in
/// the per-worker accumulators; [`Phase::name`] is the stable label used in
/// snapshots, tables, and the telemetry JSONL schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Dense kernel: counter-RNG word generation (`fill_stream_words`).
    Rng = 0,
    /// Dense kernel: index resolution (Lemire multiply-shift / alias draw).
    Index = 1,
    /// Dense kernel: the gather loop (pure loads over the state vector).
    Gather = 2,
    /// Dense kernel: applying the block's new values (`apply_block`).
    Apply = 3,
    /// Dense kernel, partial rounds: participation coin flips + compaction.
    Coin = 4,
    /// Adaptive engine: the dense→histogram handoff snapshot.
    Handoff = 5,
    /// Message engine: routing a round of request/response traffic.
    Route = 6,
    /// Message engine: `NetScenario` fault draws (drops, delays, forging).
    Faults = 7,
    /// One whole trial inside `run_seeded_into` (overlaps the finer phases).
    Trial = 8,
}

/// Number of [`Phase`] slots.
pub const PHASE_COUNT: usize = 9;

impl Phase {
    /// Every phase, in slot order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::Rng,
        Phase::Index,
        Phase::Gather,
        Phase::Apply,
        Phase::Coin,
        Phase::Handoff,
        Phase::Route,
        Phase::Faults,
        Phase::Trial,
    ];

    /// Stable snake_case label (schema-visible; do not repurpose).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Rng => "rng",
            Phase::Index => "index",
            Phase::Gather => "gather",
            Phase::Apply => "apply",
            Phase::Coin => "coin",
            Phase::Handoff => "handoff",
            Phase::Route => "route",
            Phase::Faults => "faults",
            Phase::Trial => "trial",
        }
    }
}

/// A monotone counter slot. The `Net*` counters mirror the message engine's
/// `RoundMetrics` totals — including the PR 6 fault fields `link_dropped`,
/// `partition_dropped`, and `forged` — and are folded from `net_totals` in
/// exactly one place (`stabcon_exp::aggregate::fold_net_totals`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Trials completed by this worker.
    Trials = 0,
    /// Chunks completed by this worker.
    Chunks = 1,
    /// Simulation rounds executed.
    Rounds = 2,
    /// Message engine: request legs sent.
    NetRequests = 3,
    /// Message engine: response legs delivered.
    NetDelivered = 4,
    /// Message engine: legs dropped by inbox overflow / crash loss.
    NetDropped = 5,
    /// Message engine: legs dropped by per-link Bernoulli loss.
    NetLinkDropped = 6,
    /// Message engine: legs dropped crossing a partition cut.
    NetPartitionDropped = 7,
    /// Message engine: responses forged by byzantine processes.
    NetForged = 8,
}

/// Number of [`Counter`] slots.
pub const COUNTER_COUNT: usize = 9;

impl Counter {
    /// Every counter, in slot order.
    pub const ALL: [Counter; COUNTER_COUNT] = [
        Counter::Trials,
        Counter::Chunks,
        Counter::Rounds,
        Counter::NetRequests,
        Counter::NetDelivered,
        Counter::NetDropped,
        Counter::NetLinkDropped,
        Counter::NetPartitionDropped,
        Counter::NetForged,
    ];

    /// Stable snake_case label (schema-visible; do not repurpose).
    pub fn name(self) -> &'static str {
        match self {
            Counter::Trials => "trials",
            Counter::Chunks => "chunks",
            Counter::Rounds => "rounds",
            Counter::NetRequests => "net_requests",
            Counter::NetDelivered => "net_delivered",
            Counter::NetDropped => "net_dropped",
            Counter::NetLinkDropped => "net_link_dropped",
            Counter::NetPartitionDropped => "net_partition_dropped",
            Counter::NetForged => "net_forged",
        }
    }
}

/// A gauge slot: a level, not a sum. Merged across workers by `max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gauge {
    /// Message engine: peak in-flight queue depth seen (peak, not sum —
    /// mirrors `RoundMetrics::in_flight`'s max-absorb semantics).
    NetInFlightPeak = 0,
    /// Chunk scheduler: issued-cursor minus merged-chunk lag (how far the
    /// in-order merger trails the workers).
    CursorLag = 1,
}

/// Number of [`Gauge`] slots.
pub const GAUGE_COUNT: usize = 2;

impl Gauge {
    /// Every gauge, in slot order.
    pub const ALL: [Gauge; GAUGE_COUNT] = [Gauge::NetInFlightPeak, Gauge::CursorLag];

    /// Stable snake_case label (schema-visible; do not repurpose).
    pub fn name(self) -> &'static str {
        match self {
            Gauge::NetInFlightPeak => "net_in_flight_peak",
            Gauge::CursorLag => "cursor_lag",
        }
    }
}

/// A duration histogram slot with power-of-2 nanosecond buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hist {
    /// Wall-clock nanoseconds per trial.
    TrialNanos = 0,
    /// Wall-clock nanoseconds per completed chunk.
    ChunkNanos = 1,
}

/// Number of [`Hist`] slots.
pub const HIST_COUNT: usize = 2;

/// Buckets per histogram: bucket `b > 0` counts samples in
/// `[2^(b-1), 2^b)` nanoseconds, bucket 0 counts zeros. 48 buckets cover
/// ~78 hours — far beyond any single trial or chunk.
pub const HIST_BUCKETS: usize = 48;

impl Hist {
    /// Every histogram, in slot order.
    pub const ALL: [Hist; HIST_COUNT] = [Hist::TrialNanos, Hist::ChunkNanos];

    /// Stable snake_case label (schema-visible; do not repurpose).
    pub fn name(self) -> &'static str {
        match self {
            Hist::TrialNanos => "trial_nanos",
            Hist::ChunkNanos => "chunk_nanos",
        }
    }
}

/// The bucket index a sample of `nanos` falls into: `floor(log2(n)) + 1`,
/// clamped to the last bucket (0 lands in bucket 0).
#[inline]
pub fn bucket_of(nanos: u64) -> usize {
    (64 - nanos.leading_zeros() as usize).min(HIST_BUCKETS - 1)
}

/// Inclusive lower bound of a bucket, in nanoseconds.
#[inline]
pub fn bucket_low(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else {
        1u64 << (bucket - 1)
    }
}

// ---------------------------------------------------------------------------
// Global enable flag.
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn instrumentation on or off, process-wide. Off is the default: every
/// record point then short-circuits before touching a clock or the
/// thread-local accumulator.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Release);
}

/// Whether instrumentation is currently on (one relaxed load).
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Thread-local accumulation: where guards and histograms record.
// ---------------------------------------------------------------------------

struct LocalAccum {
    phase_nanos: [Cell<u64>; PHASE_COUNT],
    phase_calls: [Cell<u64>; PHASE_COUNT],
    hist: [[Cell<u64>; HIST_BUCKETS]; HIST_COUNT],
}

// `Cell` array initializers via associated consts: `Cell::new` is const but
// `Cell` is not `Copy`, so repeat-expression arrays need a named const item.
#[allow(clippy::declare_interior_mutable_const)]
const ZERO_CELL: Cell<u64> = Cell::new(0);
#[allow(clippy::declare_interior_mutable_const)]
const ZERO_ROW: [Cell<u64>; HIST_BUCKETS] = [ZERO_CELL; HIST_BUCKETS];

impl LocalAccum {
    const fn new() -> Self {
        Self {
            phase_nanos: [ZERO_CELL; PHASE_COUNT],
            phase_calls: [ZERO_CELL; PHASE_COUNT],
            hist: [ZERO_ROW; HIST_COUNT],
        }
    }

    #[inline]
    fn bump(&self, cell: &Cell<u64>, by: u64) {
        cell.set(cell.get() + by);
    }
}

thread_local! {
    // Const-initialized: no lazy allocation on first access.
    static LOCAL: LocalAccum = const { LocalAccum::new() };
}

/// RAII phase timer: created by [`phase`], accumulates elapsed nanoseconds
/// into the thread-local slot on drop. Inert (no clock read on either end)
/// when telemetry is disabled.
#[must_use = "a phase guard times its scope; dropping it immediately records nothing useful"]
pub struct PhaseGuard {
    phase: Phase,
    start: Option<Instant>,
}

/// Start timing `p`. Bind the result (`let _t = obs::phase(...)`) so the
/// guard lives to the end of the phase's scope.
#[inline(always)]
pub fn phase(p: Phase) -> PhaseGuard {
    PhaseGuard {
        phase: p,
        start: if enabled() {
            Some(Instant::now())
        } else {
            None
        },
    }
}

impl Drop for PhaseGuard {
    #[inline]
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = start.elapsed().as_nanos() as u64;
            let i = self.phase as usize;
            LOCAL.with(|l| {
                l.bump(&l.phase_nanos[i], nanos);
                l.bump(&l.phase_calls[i], 1);
            });
        }
    }
}

/// A manual stopwatch for callers that want the elapsed value itself (e.g.
/// to feed a histogram *and* a progress line). Inert when disabled.
pub struct Stopwatch(Option<Instant>);

/// Start a stopwatch (no clock read when telemetry is disabled).
#[inline(always)]
pub fn stopwatch() -> Stopwatch {
    Stopwatch(if enabled() {
        Some(Instant::now())
    } else {
        None
    })
}

impl Stopwatch {
    /// Elapsed nanoseconds, or `None` when telemetry was off at the start.
    #[inline]
    pub fn elapsed_nanos(&self) -> Option<u64> {
        self.0.map(|s| s.elapsed().as_nanos() as u64)
    }
}

/// Record one duration sample into histogram `h` (thread-local; moved to a
/// worker slot by [`WorkerHandle::drain_local`]). No-op when disabled.
#[inline(always)]
pub fn hist_record(h: Hist, nanos: u64) {
    if !enabled() {
        return;
    }
    LOCAL.with(|l| {
        let cell = &l.hist[h as usize][bucket_of(nanos)];
        cell.set(cell.get() + 1);
    });
}

// ---------------------------------------------------------------------------
// The registry: per-worker slots, merged snapshots.
// ---------------------------------------------------------------------------

// Atomic array initializers need the same named-const workaround as `Cell`.
#[allow(clippy::declare_interior_mutable_const)]
const ZERO_ATOMIC: AtomicU64 = AtomicU64::new(0);
#[allow(clippy::declare_interior_mutable_const)]
const ZERO_ATOMIC_ROW: [AtomicU64; HIST_BUCKETS] = [ZERO_ATOMIC; HIST_BUCKETS];

/// One worker's metric slots. Cache-line-aligned so concurrent workers never
/// false-share; only that worker writes it, so every write is a relaxed add.
#[repr(align(128))]
pub struct WorkerSlot {
    counters: [AtomicU64; COUNTER_COUNT],
    gauges: [AtomicU64; GAUGE_COUNT],
    phase_nanos: [AtomicU64; PHASE_COUNT],
    phase_calls: [AtomicU64; PHASE_COUNT],
    hist: [[AtomicU64; HIST_BUCKETS]; HIST_COUNT],
}

impl WorkerSlot {
    const fn new() -> Self {
        Self {
            counters: [ZERO_ATOMIC; COUNTER_COUNT],
            gauges: [ZERO_ATOMIC; GAUGE_COUNT],
            phase_nanos: [ZERO_ATOMIC; PHASE_COUNT],
            phase_calls: [ZERO_ATOMIC; PHASE_COUNT],
            hist: [ZERO_ATOMIC_ROW; HIST_COUNT],
        }
    }

    fn reset(&self) {
        for c in &self.counters {
            c.store(0, Ordering::Relaxed);
        }
        for g in &self.gauges {
            g.store(0, Ordering::Relaxed);
        }
        for p in &self.phase_nanos {
            p.store(0, Ordering::Relaxed);
        }
        for p in &self.phase_calls {
            p.store(0, Ordering::Relaxed);
        }
        for row in &self.hist {
            for b in row {
                b.store(0, Ordering::Relaxed);
            }
        }
    }
}

/// The shared registry: one [`WorkerSlot`] per worker, allocated once at
/// construction. Share it via `Arc` and hand each worker its
/// [`WorkerHandle`].
pub struct MetricRegistry {
    slots: Box<[WorkerSlot]>,
}

impl MetricRegistry {
    /// A registry with `workers` slots (at least one).
    pub fn new(workers: usize) -> Self {
        Self {
            slots: (0..workers.max(1)).map(|_| WorkerSlot::new()).collect(),
        }
    }

    /// Number of worker slots.
    pub fn workers(&self) -> usize {
        self.slots.len()
    }

    /// The recording handle for worker `worker` (wraps around if callers
    /// spawn more workers than slots — metrics then share, never panic).
    pub fn handle(&self, worker: usize) -> WorkerHandle<'_> {
        WorkerHandle {
            slot: &self.slots[worker % self.slots.len()],
        }
    }

    /// Zero every slot (e.g. between campaign cells, so per-cell profiles
    /// don't bleed into each other).
    pub fn reset(&self) {
        for slot in self.slots.iter() {
            slot.reset();
        }
    }

    /// Read every slot into `out` (sized via [`Snapshot::new`] with this
    /// registry's worker count) and recompute the merged total. Allocates
    /// nothing; safe to call while workers are recording.
    pub fn snapshot_into(&self, out: &mut Snapshot) {
        assert_eq!(
            out.workers.len(),
            self.slots.len(),
            "snapshot sized for a different worker count"
        );
        let mut total = WorkerSnap::zero();
        for (slot, snap) in self.slots.iter().zip(out.workers.iter_mut()) {
            for (i, c) in slot.counters.iter().enumerate() {
                snap.counters[i] = c.load(Ordering::Relaxed);
            }
            for (i, g) in slot.gauges.iter().enumerate() {
                snap.gauges[i] = g.load(Ordering::Relaxed);
            }
            for (i, p) in slot.phase_nanos.iter().enumerate() {
                snap.phase_nanos[i] = p.load(Ordering::Relaxed);
            }
            for (i, p) in slot.phase_calls.iter().enumerate() {
                snap.phase_calls[i] = p.load(Ordering::Relaxed);
            }
            for (h, row) in slot.hist.iter().enumerate() {
                for (b, cell) in row.iter().enumerate() {
                    snap.hist[h][b] = cell.load(Ordering::Relaxed);
                }
            }
            total.absorb(snap);
        }
        out.total = total;
    }
}

/// One worker's recording handle: relaxed stores into its own slot.
#[derive(Clone, Copy)]
pub struct WorkerHandle<'a> {
    slot: &'a WorkerSlot,
}

impl WorkerHandle<'_> {
    /// Add `by` to counter `c`.
    #[inline]
    pub fn add(&self, c: Counter, by: u64) {
        self.slot.counters[c as usize].fetch_add(by, Ordering::Relaxed);
    }

    /// Set gauge `g` to `v`.
    #[inline]
    pub fn gauge_set(&self, g: Gauge, v: u64) {
        self.slot.gauges[g as usize].store(v, Ordering::Relaxed);
    }

    /// Raise gauge `g` to at least `v` (peak-tracking).
    #[inline]
    pub fn gauge_max(&self, g: Gauge, v: u64) {
        self.slot.gauges[g as usize].fetch_max(v, Ordering::Relaxed);
    }

    /// Move this thread's accumulated phase times and histogram samples
    /// into the slot. Call from the owning worker thread (typically once
    /// per trial or chunk); cheap when nothing accumulated.
    pub fn drain_local(&self) {
        LOCAL.with(|l| {
            for i in 0..PHASE_COUNT {
                let nanos = l.phase_nanos[i].replace(0);
                if nanos != 0 {
                    self.slot.phase_nanos[i].fetch_add(nanos, Ordering::Relaxed);
                }
                let calls = l.phase_calls[i].replace(0);
                if calls != 0 {
                    self.slot.phase_calls[i].fetch_add(calls, Ordering::Relaxed);
                }
            }
            for h in 0..HIST_COUNT {
                for b in 0..HIST_BUCKETS {
                    let v = l.hist[h][b].replace(0);
                    if v != 0 {
                        self.slot.hist[h][b].fetch_add(v, Ordering::Relaxed);
                    }
                }
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Snapshots.
// ---------------------------------------------------------------------------

/// One worker's metrics at a point in time (plain `Copy` data).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerSnap {
    /// Counter values, indexed by `Counter as usize`.
    pub counters: [u64; COUNTER_COUNT],
    /// Gauge values, indexed by `Gauge as usize`.
    pub gauges: [u64; GAUGE_COUNT],
    /// Accumulated nanoseconds per phase, indexed by `Phase as usize`.
    pub phase_nanos: [u64; PHASE_COUNT],
    /// Guard invocations per phase, indexed by `Phase as usize`.
    pub phase_calls: [u64; PHASE_COUNT],
    /// Histogram buckets, indexed by `Hist as usize` then bucket.
    pub hist: [[u64; HIST_BUCKETS]; HIST_COUNT],
}

impl WorkerSnap {
    /// The all-zero snapshot.
    pub const fn zero() -> Self {
        Self {
            counters: [0; COUNTER_COUNT],
            gauges: [0; GAUGE_COUNT],
            phase_nanos: [0; PHASE_COUNT],
            phase_calls: [0; PHASE_COUNT],
            hist: [[0; HIST_BUCKETS]; HIST_COUNT],
        }
    }

    /// Merge another worker's snapshot into this one: counters, phase
    /// times, and histograms sum; gauges (levels) take the max.
    pub fn absorb(&mut self, other: &WorkerSnap) {
        for i in 0..COUNTER_COUNT {
            self.counters[i] += other.counters[i];
        }
        for i in 0..GAUGE_COUNT {
            self.gauges[i] = self.gauges[i].max(other.gauges[i]);
        }
        for i in 0..PHASE_COUNT {
            self.phase_nanos[i] += other.phase_nanos[i];
            self.phase_calls[i] += other.phase_calls[i];
        }
        for h in 0..HIST_COUNT {
            for b in 0..HIST_BUCKETS {
                self.hist[h][b] += other.hist[h][b];
            }
        }
    }

    /// Counter value.
    #[inline]
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Gauge value.
    #[inline]
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g as usize]
    }

    /// Accumulated nanoseconds in phase `p`.
    #[inline]
    pub fn phase_nanos(&self, p: Phase) -> u64 {
        self.phase_nanos[p as usize]
    }

    /// Guard invocations of phase `p`.
    #[inline]
    pub fn phase_calls(&self, p: Phase) -> u64 {
        self.phase_calls[p as usize]
    }

    /// Total samples in histogram `h`.
    pub fn hist_count(&self, h: Hist) -> u64 {
        self.hist[h as usize].iter().sum()
    }

    /// The buckets of histogram `h`.
    #[inline]
    pub fn hist_buckets(&self, h: Hist) -> &[u64; HIST_BUCKETS] {
        &self.hist[h as usize]
    }

    /// Fraction of the summed kernel-phase time (everything but
    /// [`Phase::Trial`]) spent in `p` — `NaN` when nothing was timed. This
    /// is the "gather share" number the population-scale memory-rework work
    /// keys off.
    pub fn phase_share(&self, p: Phase) -> f64 {
        let denom: u64 = Phase::ALL
            .iter()
            .filter(|q| !matches!(q, Phase::Trial))
            .map(|q| self.phase_nanos(*q))
            .sum();
        self.phase_nanos(p) as f64 / denom as f64
    }
}

/// A reusable buffer for registry reads: per-worker snapshots plus their
/// merged total. Allocate once ([`Snapshot::new`]), refill with
/// [`MetricRegistry::snapshot_into`].
pub struct Snapshot {
    workers: Box<[WorkerSnap]>,
    total: WorkerSnap,
}

impl Snapshot {
    /// A snapshot buffer for `workers` slots (at least one).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: vec![WorkerSnap::zero(); workers.max(1)].into_boxed_slice(),
            total: WorkerSnap::zero(),
        }
    }

    /// Per-worker snapshots, in slot order.
    pub fn workers(&self) -> &[WorkerSnap] {
        &self.workers
    }

    /// The merged total (counters/phases/histograms summed, gauges maxed).
    pub fn total(&self) -> &WorkerSnap {
        &self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize tests that flip the global flag.
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn buckets_are_power_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        for b in 0..HIST_BUCKETS {
            assert_eq!(bucket_of(bucket_low(b)), b.max(bucket_of(0)));
        }
        // Bucket bounds nest: low(b) < low(b+1).
        for b in 1..HIST_BUCKETS - 1 {
            assert!(bucket_low(b) < bucket_low(b + 1));
        }
    }

    #[test]
    fn disabled_guards_record_nothing() {
        let _g = GATE.lock().unwrap();
        set_enabled(false);
        {
            let _t = phase(Phase::Gather);
        }
        hist_record(Hist::TrialNanos, 1234);
        assert!(stopwatch().elapsed_nanos().is_none());
        let reg = MetricRegistry::new(1);
        reg.handle(0).drain_local();
        let mut snap = Snapshot::new(1);
        reg.snapshot_into(&mut snap);
        assert_eq!(snap.total().phase_calls(Phase::Gather), 0);
        assert_eq!(snap.total().hist_count(Hist::TrialNanos), 0);
    }

    #[test]
    fn enabled_guards_accumulate_and_drain() {
        let _g = GATE.lock().unwrap();
        set_enabled(true);
        {
            let _t = phase(Phase::Gather);
            std::hint::black_box(0u64);
        }
        hist_record(Hist::TrialNanos, 1 << 20);
        set_enabled(false);

        let reg = MetricRegistry::new(2);
        let h = reg.handle(0);
        h.drain_local();
        h.add(Counter::Trials, 3);
        h.gauge_max(Gauge::NetInFlightPeak, 7);
        h.gauge_max(Gauge::NetInFlightPeak, 5); // peak keeps 7

        let mut snap = Snapshot::new(2);
        reg.snapshot_into(&mut snap);
        let t = snap.total();
        assert_eq!(t.phase_calls(Phase::Gather), 1);
        assert!(t.phase_nanos(Phase::Gather) > 0);
        assert_eq!(t.hist[Hist::TrialNanos as usize][bucket_of(1 << 20)], 1);
        assert_eq!(t.counter(Counter::Trials), 3);
        assert_eq!(t.gauge(Gauge::NetInFlightPeak), 7);
        // Worker 1 recorded nothing.
        assert_eq!(snap.workers()[1], WorkerSnap::zero());

        // Drained means drained: a second drain adds nothing.
        h.drain_local();
        reg.snapshot_into(&mut snap);
        assert_eq!(snap.total().phase_calls(Phase::Gather), 1);

        // Reset zeroes every slot.
        reg.reset();
        reg.snapshot_into(&mut snap);
        assert_eq!(*snap.total(), WorkerSnap::zero());
    }

    #[test]
    fn totals_merge_counters_sum_gauges_max() {
        let reg = MetricRegistry::new(3);
        for w in 0..3 {
            let h = reg.handle(w);
            h.add(Counter::Rounds, 10 * (w as u64 + 1));
            h.gauge_max(Gauge::CursorLag, w as u64);
        }
        let mut snap = Snapshot::new(3);
        reg.snapshot_into(&mut snap);
        assert_eq!(snap.total().counter(Counter::Rounds), 60);
        assert_eq!(snap.total().gauge(Gauge::CursorLag), 2);
        // Handles wrap rather than panic past the slot count.
        reg.handle(5).add(Counter::Rounds, 1);
        reg.snapshot_into(&mut snap);
        assert_eq!(snap.workers()[2].counter(Counter::Rounds), 31);
    }

    #[test]
    fn phase_share_is_kernel_relative() {
        let mut w = WorkerSnap::zero();
        w.phase_nanos[Phase::Gather as usize] = 75;
        w.phase_nanos[Phase::Apply as usize] = 25;
        w.phase_nanos[Phase::Trial as usize] = 1_000_000; // excluded
        assert!((w.phase_share(Phase::Gather) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn names_are_stable_and_unique() {
        let mut names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        names.extend(Counter::ALL.iter().map(|c| c.name()));
        names.extend(Gauge::ALL.iter().map(|g| g.name()));
        names.extend(Hist::ALL.iter().map(|h| h.name()));
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "metric names must be unique");
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(*p as usize, i);
        }
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i);
        }
    }
}

//! # stabcon-par
//!
//! A minimal data-parallel executor for the `stabcon` workspace.
//!
//! The reproduction needs two kinds of parallelism and the offline
//! dependency set does not include `rayon`, so we build both on
//! `crossbeam` + `parking_lot`:
//!
//! * **Scoped chunked parallelism** over borrowed data
//!   ([`par_map`], [`par_map_indexed`], [`par_chunks_mut`], [`par_reduce`]):
//!   used by the dense engine to update millions of balls per round, and by
//!   the experiment harness to run independent trials. Work is split into
//!   more chunks than threads and distributed through a multi-consumer
//!   channel, which gives dynamic load balancing without unsafe code.
//! * **A persistent work-stealing [`ThreadPool`]** (crossbeam deques:
//!   per-worker FIFO queues + global injector) for fire-and-forget jobs with
//!   `wait_idle` synchronization: used by long experiment campaigns to keep
//!   workers warm across thousands of small simulations.
//!
//! Determinism note: simulation results never depend on scheduling — the
//! engines derive randomness from counter-based RNG coordinates, and the
//! combinators here always reassemble outputs in input order.
//!
//! Thread-count note: [`default_threads`] caps at **16 workers** regardless
//! of `available_parallelism`. The dense engine's round is a
//! gather-then-write over the full state vector, so beyond roughly 16
//! threads the workers saturate memory bandwidth rather than compute —
//! extra threads only add channel/steal traffic and make sweep timings
//! noisier. Pass an explicit thread count to the combinators to override
//! the cap where a workload is known to be compute-bound.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pool;
mod scope;

pub use pool::ThreadPool;
pub use scope::{par_chunks_mut, par_map, par_map_indexed, par_reduce};

/// Number of worker threads to use by default: the available parallelism,
/// capped to 16 (experiment sweeps are memory-bandwidth-bound beyond that).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

#[cfg(test)]
mod tests {
    #[test]
    fn default_threads_sane() {
        let t = super::default_threads();
        assert!((1..=16).contains(&t));
    }
}

//! A persistent work-stealing thread pool.
//!
//! Architecture (the classic crossbeam-deque shape):
//!
//! * one global [`crossbeam::deque::Injector`] receives submitted jobs;
//! * each worker owns a local FIFO [`crossbeam::deque::Worker`] queue and
//!   holds [`crossbeam::deque::Stealer`]s for every other worker;
//! * a worker pops local work first, then batch-steals from the injector,
//!   then steals from siblings, and finally parks on a condvar.
//!
//! A pending-job counter with a condvar provides [`ThreadPool::wait_idle`],
//! which experiment campaigns use as a barrier between sweep stages.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::deque::{Injector, Stealer, Worker};
use parking_lot::{Condvar, Mutex};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    injector: Injector<Job>,
    stealers: Vec<Stealer<Job>>,
    shutdown: AtomicBool,
    /// Jobs submitted but not yet finished.
    pending: AtomicUsize,
    /// Guards wake-ups for both idle workers and `wait_idle` callers.
    lock: Mutex<()>,
    work_available: Condvar,
    all_done: Condvar,
}

/// A fixed-size work-stealing thread pool for `'static` jobs.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawn a pool with `threads` workers (at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let workers: Vec<Worker<Job>> = (0..threads).map(|_| Worker::new_fifo()).collect();
        let stealers: Vec<Stealer<Job>> = workers.iter().map(|w| w.stealer()).collect();
        let shared = Arc::new(Shared {
            injector: Injector::new(),
            stealers,
            shutdown: AtomicBool::new(false),
            pending: AtomicUsize::new(0),
            lock: Mutex::new(()),
            work_available: Condvar::new(),
            all_done: Condvar::new(),
        });
        let handles = workers
            .into_iter()
            .enumerate()
            .map(|(idx, local)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("stabcon-pool-{idx}"))
                    .spawn(move || worker_loop(idx, local, shared))
                    .expect("spawning pool worker")
            })
            .collect();
        Self { shared, handles }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Submit a job for execution.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        self.shared.pending.fetch_add(1, Ordering::SeqCst);
        self.shared.injector.push(Box::new(job));
        let _guard = self.shared.lock.lock();
        self.shared.work_available.notify_one();
    }

    /// Block until every submitted job has finished.
    pub fn wait_idle(&self) {
        let mut guard = self.shared.lock.lock();
        while self.shared.pending.load(Ordering::SeqCst) != 0 {
            self.shared.all_done.wait(&mut guard);
        }
    }

    /// Current number of unfinished jobs (approximate, for monitoring).
    pub fn pending(&self) -> usize {
        self.shared.pending.load(Ordering::SeqCst)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _guard = self.shared.lock.lock();
            self.shared.work_available.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn find_job(idx: usize, local: &Worker<Job>, shared: &Shared) -> Option<Job> {
    if let Some(job) = local.pop() {
        return Some(job);
    }
    // Batch-steal from the injector into the local queue.
    loop {
        match shared.injector.steal_batch_and_pop(local) {
            crossbeam::deque::Steal::Success(job) => return Some(job),
            crossbeam::deque::Steal::Empty => break,
            crossbeam::deque::Steal::Retry => continue,
        }
    }
    // Steal from siblings.
    for (other, stealer) in shared.stealers.iter().enumerate() {
        if other == idx {
            continue;
        }
        loop {
            match stealer.steal() {
                crossbeam::deque::Steal::Success(job) => return Some(job),
                crossbeam::deque::Steal::Empty => break,
                crossbeam::deque::Steal::Retry => continue,
            }
        }
    }
    None
}

fn worker_loop(idx: usize, local: Worker<Job>, shared: Arc<Shared>) {
    loop {
        if let Some(job) = find_job(idx, &local, &shared) {
            job();
            let before = shared.pending.fetch_sub(1, Ordering::SeqCst);
            if before == 1 {
                let _guard = shared.lock.lock();
                shared.all_done.notify_all();
            }
            continue;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Nothing to do: park with a timeout so a lost wake-up cannot hang
        // the pool.
        let mut guard = shared.lock.lock();
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        shared
            .work_available
            .wait_for(&mut guard, std::time::Duration::from_millis(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..1000 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn wait_idle_on_empty_pool_returns() {
        let pool = ThreadPool::new(2);
        pool.wait_idle(); // must not hang
        assert_eq!(pool.pending(), 0);
    }

    #[test]
    fn jobs_actually_parallel() {
        // Two jobs that each wait for the other via atomics can only finish
        // if at least two workers run concurrently.
        let pool = ThreadPool::new(2);
        let a = Arc::new(AtomicBool::new(false));
        let b = Arc::new(AtomicBool::new(false));
        {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            pool.execute(move || {
                a.store(true, Ordering::SeqCst);
                while !b.load(Ordering::SeqCst) {
                    std::hint::spin_loop();
                }
            });
        }
        {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            pool.execute(move || {
                b.store(true, Ordering::SeqCst);
                while !a.load(Ordering::SeqCst) {
                    std::hint::spin_loop();
                }
            });
        }
        pool.wait_idle();
    }

    #[test]
    fn reusable_across_batches() {
        let pool = ThreadPool::new(3);
        let counter = Arc::new(AtomicU64::new(0));
        for batch in 0..5 {
            for _ in 0..100 {
                let c = Arc::clone(&counter);
                pool.execute(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            pool.wait_idle();
            assert_eq!(counter.load(Ordering::Relaxed), (batch + 1) * 100);
        }
    }

    #[test]
    fn drop_joins_workers() {
        let counter = Arc::new(AtomicU64::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..50 {
                let c = Arc::clone(&counter);
                pool.execute(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            pool.wait_idle();
        } // drop here
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = ThreadPool::new(1);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..10 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }
}

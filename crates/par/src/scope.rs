//! Scoped chunked parallel combinators over borrowed data.
//!
//! All combinators split the input into `threads × OVERSUBSCRIBE` chunks and
//! feed them to scoped worker threads through an unbounded channel, so a
//! slow chunk does not stall the others (dynamic load balancing). Outputs
//! are reassembled in input order.

use crossbeam::channel;

/// Chunks per thread: enough oversubscription to absorb skewed chunk costs
/// (an adversarial simulation can take many more rounds than its neighbours).
const OVERSUBSCRIBE: usize = 8;

fn chunk_size(len: usize, threads: usize) -> usize {
    let target_chunks = threads.max(1) * OVERSUBSCRIBE;
    len.div_ceil(target_chunks).max(1)
}

/// Parallel map over a slice, preserving order.
///
/// `threads == 1` (or a short input) degrades to a sequential map with no
/// thread spawns.
pub fn par_map<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed(threads, items, |_, item| f(item))
}

/// Parallel map that also hands the item index to the mapper (used to derive
/// per-trial RNG seeds), preserving order.
pub fn par_map_indexed<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    if threads <= 1 || n == 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let cs = chunk_size(n, threads);
    let n_chunks = n.div_ceil(cs);
    let workers = threads.min(n_chunks);

    let (work_tx, work_rx) = channel::unbounded::<(usize, &[T])>();
    for (ci, chunk) in items.chunks(cs).enumerate() {
        work_tx.send((ci, chunk)).expect("queueing work");
    }
    drop(work_tx);

    let mut slots: Vec<Option<Vec<U>>> = Vec::with_capacity(n_chunks);
    slots.resize_with(n_chunks, || None);

    let (res_tx, res_rx) = channel::unbounded::<(usize, Vec<U>)>();
    crossbeam::thread::scope(|s| {
        for _ in 0..workers {
            let work_rx = work_rx.clone();
            let res_tx = res_tx.clone();
            let f = &f;
            s.spawn(move |_| {
                while let Ok((ci, chunk)) = work_rx.recv() {
                    let base = ci * cs;
                    let out: Vec<U> = chunk
                        .iter()
                        .enumerate()
                        .map(|(j, item)| f(base + j, item))
                        .collect();
                    if res_tx.send((ci, out)).is_err() {
                        return;
                    }
                }
            });
        }
        drop(res_tx);
        for (ci, out) in res_rx {
            slots[ci] = Some(out);
        }
    })
    .expect("worker thread panicked");

    let mut result = Vec::with_capacity(n);
    for slot in slots {
        result.extend(slot.expect("missing chunk result"));
    }
    result
}

/// Parallel in-place mutation: the buffer is split into chunks and each
/// worker receives `(offset, &mut chunk)`. This is the primitive behind the
/// parallel dense engine round (the closure reads the immutable previous
/// state it captured and writes the new state chunk).
pub fn par_chunks_mut<T, F>(threads: usize, data: &mut [T], min_chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = data.len();
    if n == 0 {
        return;
    }
    let cs = chunk_size(n, threads).max(min_chunk.max(1));
    if threads <= 1 || n <= cs {
        f(0, data);
        return;
    }
    let workers = threads.min(n.div_ceil(cs));
    let (work_tx, work_rx) = channel::unbounded::<(usize, &mut [T])>();
    for (ci, chunk) in data.chunks_mut(cs).enumerate() {
        work_tx.send((ci * cs, chunk)).expect("queueing work");
    }
    drop(work_tx);

    crossbeam::thread::scope(|s| {
        for _ in 0..workers {
            let work_rx = work_rx.clone();
            let f = &f;
            s.spawn(move |_| {
                while let Ok((offset, chunk)) = work_rx.recv() {
                    f(offset, chunk);
                }
            });
        }
    })
    .expect("worker thread panicked");
}

/// Parallel map-reduce: maps each item, combines chunk-partials with
/// `reduce`, then folds the partials in chunk order. `reduce` must be
/// associative; `identity` must be its neutral element.
pub fn par_reduce<T, U, FM, FR>(threads: usize, items: &[T], identity: U, map: FM, reduce: FR) -> U
where
    T: Sync,
    U: Send + Clone,
    FM: Fn(&T) -> U + Sync,
    FR: Fn(U, U) -> U + Sync,
{
    if items.is_empty() {
        return identity;
    }
    if threads <= 1 {
        return items
            .iter()
            .fold(identity.clone(), |acc, x| reduce(acc, map(x)));
    }
    let partials = par_map_indexed(threads, items, |_, x| map(x));
    partials.into_iter().fold(identity, reduce)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_matches_sequential() {
        let items: Vec<u64> = (0..10_000).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 4, 8] {
            let par = par_map(threads, &items, |x| x * x + 1);
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn map_indexed_sees_correct_indices() {
        let items: Vec<u32> = (0..5000).collect();
        let out = par_map_indexed(4, &items, |i, &x| (i as u32, x));
        for (i, (idx, x)) in out.iter().enumerate() {
            assert_eq!(*idx as usize, i);
            assert_eq!(*x, i as u32);
        }
    }

    #[test]
    fn map_empty_and_single() {
        let empty: Vec<i32> = vec![];
        assert!(par_map(4, &empty, |x| *x).is_empty());
        assert_eq!(par_map(4, &[7], |x| x + 1), vec![8]);
    }

    #[test]
    fn map_runs_on_multiple_threads() {
        // With enough items and blocking-free work, at least 2 distinct
        // thread ids should participate (flaky-proof: we only require > 1
        // when the machine has > 1 CPU).
        if super::super::default_threads() < 2 {
            return;
        }
        let items: Vec<u64> = (0..100_000).collect();
        let ids = par_map(4, &items, |_| std::thread::current().id());
        let distinct: std::collections::HashSet<_> = ids.into_iter().collect();
        assert!(distinct.len() > 1, "work never parallelized");
    }

    #[test]
    fn chunks_mut_writes_everything() {
        let mut data = vec![0u64; 100_000];
        par_chunks_mut(4, &mut data, 1, |offset, chunk| {
            for (j, slot) in chunk.iter_mut().enumerate() {
                *slot = (offset + j) as u64;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i as u64);
        }
    }

    #[test]
    fn chunks_mut_sequential_fallback() {
        let mut data = vec![1u8; 10];
        par_chunks_mut(1, &mut data, 1, |_, chunk| {
            for slot in chunk {
                *slot = 2;
            }
        });
        assert!(data.iter().all(|&b| b == 2));
    }

    #[test]
    fn reduce_sums() {
        let items: Vec<u64> = (1..=1000).collect();
        let total = par_reduce(4, &items, 0u64, |&x| x, |a, b| a + b);
        assert_eq!(total, 500_500);
    }

    #[test]
    fn reduce_respects_identity() {
        let empty: Vec<u64> = vec![];
        assert_eq!(par_reduce(4, &empty, 42u64, |&x| x, |a, b| a + b), 42);
    }

    #[test]
    fn all_items_visited_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<u32> = (0..50_000).collect();
        let _ = par_map(8, &items, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), items.len());
    }
}

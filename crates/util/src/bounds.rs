//! The paper's probabilistic toolkit as numeric functions.
//!
//! §2.2 of the paper states three Chernoff bounds (Lemmas 5–7) and the proof
//! of Lemma 14 uses two-sided bounds on the standard normal tail. Having
//! these as code lets the experiment harness print *measured tail
//! probability vs the bound the proof uses* side by side, which is the
//! closest a simulation can get to "checking" the analysis.

use std::f64::consts::PI;

/// Lemma 5 (upper tail, simplified form):
/// `Pr[X ≥ (1+δ)μ] ≤ exp(−min(δ², δ)·μ/3)` for a sum of independent
/// Bernoulli variables with mean `μ`, any `δ > 0`.
pub fn chernoff_upper(mu: f64, delta: f64) -> f64 {
    assert!(delta > 0.0 && mu >= 0.0);
    (-(delta * delta).min(delta) * mu / 3.0).exp().min(1.0)
}

/// Lemma 5 (upper tail, tight form): `((e^δ)/(1+δ)^(1+δ))^μ`, computed in
/// log space.
pub fn chernoff_upper_tight(mu: f64, delta: f64) -> f64 {
    assert!(delta > 0.0 && mu >= 0.0);
    let log_bound = mu * (delta - (1.0 + delta) * delta.ln_1p());
    log_bound.exp().min(1.0)
}

/// Lemma 5 (lower tail): `Pr[X ≤ (1−δ)μ] ≤ exp(−δ²μ/2)` for `0 < δ < 1`.
pub fn chernoff_lower(mu: f64, delta: f64) -> f64 {
    assert!(delta > 0.0 && delta < 1.0 && mu >= 0.0);
    (-delta * delta * mu / 2.0).exp().min(1.0)
}

/// Lemma 6 (geometric sums): for `X` a sum of `n` iid geometric(δ) variables,
/// `Pr[X ≥ (1+ε)·n/δ] ≤ exp(−ε²n / (2(1+ε)))`.
pub fn chernoff_geometric_sum(n: u64, eps: f64) -> f64 {
    assert!(eps > 0.0);
    (-(eps * eps) * n as f64 / (2.0 * (1.0 + eps)))
        .exp()
        .min(1.0)
}

/// Lemma 7 (exponential-tail sums): same exponent as Lemma 6, with the bound
/// valid against `(1+ε)μ + O(n)`; the exponential factor is
/// `exp(−ε²n / (2(1+ε)))`.
pub fn chernoff_exponential_tail_sum(n: u64, eps: f64) -> f64 {
    chernoff_geometric_sum(n, eps)
}

/// Standard normal density.
pub fn normal_pdf(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * PI).sqrt()
}

/// Standard normal CDF via `erf` (Abramowitz & Stegun 7.1.26 style rational
/// approximation; absolute error < 1.5e-7 — ample for experiment reporting).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function, A&S 7.1.26 approximation with sign reflection.
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// The *lower* bound on the normal upper tail used in Lemma 14:
/// `1 − Φ(x) ≥ e^{−x²/2} / (√(2π)(1+x))` for `x ≥ 0`.
pub fn normal_tail_lower_bound(x: f64) -> f64 {
    assert!(x >= 0.0);
    (-(x * x) / 2.0).exp() / ((2.0 * PI).sqrt() * (1.0 + x))
}

/// The *upper* bound on the normal upper tail used in Lemma 14:
/// `1 − Φ(x) ≤ e^{−x²/2} / (√π (1+x))` for `x ≥ 0`.
pub fn normal_tail_upper_bound(x: f64) -> f64 {
    assert!(x >= 0.0);
    (-(x * x) / 2.0).exp() / (PI.sqrt() * (1.0 + x))
}

/// Lemma 14's explicit success-probability lower bound: with `c` the Lemma 12
/// constant and any `ε > 0`,
/// `Pr[Ψ_{t+1} ≥ c√n] ≥ e^{−8c²/3} / (√(2π)(1+4c/√3)) − ε`.
pub fn lemma14_success_probability(c: f64, eps: f64) -> f64 {
    ((-8.0 * c * c / 3.0).exp() / ((2.0 * PI).sqrt() * (1.0 + 4.0 * c / 3f64.sqrt())) - eps)
        .max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chernoff_upper_is_probability_and_monotone() {
        let mut prev = 1.0;
        for i in 1..50 {
            let delta = i as f64 * 0.1;
            let b = chernoff_upper(20.0, delta);
            assert!((0.0..=1.0).contains(&b));
            assert!(b <= prev + 1e-15, "not monotone at δ={delta}");
            prev = b;
        }
    }

    #[test]
    fn tight_form_is_tighter() {
        for &delta in &[0.1, 0.5, 1.0, 2.0, 5.0] {
            for &mu in &[1.0, 10.0, 100.0] {
                assert!(
                    chernoff_upper_tight(mu, delta) <= chernoff_upper(mu, delta) + 1e-12,
                    "δ={delta} μ={mu}"
                );
            }
        }
    }

    #[test]
    fn chernoff_bounds_actually_bound_binomial_tails() {
        // Exact tail of Bin(100, 0.3) vs the bound at a few deltas.
        use crate::dist::ln_binomial_coeff;
        let n = 100u64;
        let p = 0.3;
        let mu = n as f64 * p;
        for &delta in &[0.2, 0.5, 1.0] {
            let thresh = ((1.0 + delta) * mu).ceil() as u64;
            let mut tail = 0.0;
            for k in thresh..=n {
                tail +=
                    (ln_binomial_coeff(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln())
                        .exp();
            }
            assert!(
                tail <= chernoff_upper_tight(mu, delta) + 1e-12,
                "δ={delta}: tail {tail} > bound"
            );
        }
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.0) - 0.8413447).abs() < 1e-5);
        assert!((normal_cdf(-1.0) - 0.1586553).abs() < 1e-5);
        assert!((normal_cdf(1.96) - 0.9750021).abs() < 1e-5);
        assert!((normal_cdf(3.0) - 0.9986501).abs() < 1e-5);
    }

    #[test]
    fn erf_symmetry() {
        for &x in &[0.1, 0.5, 1.0, 2.0] {
            assert!((erf(x) + erf(-x)).abs() < 1e-12);
        }
        // The rational approximation is ~7e-10 off at the origin.
        assert!(erf(0.0).abs() < 1e-8);
    }

    #[test]
    fn tail_bounds_sandwich_true_tail() {
        for &x in &[0.0, 0.5, 1.0, 2.0, 3.0] {
            let tail = 1.0 - normal_cdf(x);
            let lo = normal_tail_lower_bound(x);
            let hi = normal_tail_upper_bound(x);
            assert!(lo <= tail + 2e-7, "x={x}: lower bound {lo} vs tail {tail}");
            assert!(tail <= hi + 2e-7, "x={x}: tail {tail} vs upper bound {hi}");
        }
    }

    #[test]
    fn geometric_sum_bound_sane() {
        let b = chernoff_geometric_sum(100, 0.5);
        assert!(b > 0.0 && b < 1.0);
        // More variables → smaller bound.
        assert!(chernoff_geometric_sum(200, 0.5) < b);
    }

    #[test]
    fn lemma14_probability_positive_for_small_c() {
        let p = lemma14_success_probability(0.5, 0.01);
        assert!(p > 0.0 && p < 1.0, "p = {p}");
        // Larger c → smaller success probability.
        assert!(lemma14_success_probability(1.0, 0.01) < p);
    }
}

//! Vose's alias method: O(m) build, O(1) categorical sampling.

use rand::RngCore;

use crate::rng::{gen_f64, gen_index};

/// Preprocessed categorical distribution over `0..m`.
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Acceptance probability of the column's own index.
    prob: Vec<f64>,
    /// Fallback index taken on rejection.
    alias: Vec<usize>,
}

/// Reusable scratch buffers for (re)building alias tables without
/// allocating: the scaled weights, the resulting `prob`/`alias` columns,
/// and the small/large worklists of Vose's algorithm. One scratch serves
/// any number of rebuilds of any size.
#[derive(Debug, Clone, Default)]
pub struct AliasScratch {
    scaled: Vec<f64>,
    prob: Vec<f64>,
    alias: Vec<usize>,
    small: Vec<usize>,
    large: Vec<usize>,
}

/// Vose's O(m) alias construction into `scratch.prob` / `scratch.alias`.
///
/// This is the **single** build routine behind [`AliasTable::new`],
/// [`PackedAlias::new`], and [`PackedAlias::rebuild_from`], so a table
/// rebuilt through a dirty scratch is bit-identical to a freshly
/// constructed one by construction.
///
/// # Panics
/// Panics if `weights` is empty, contains a negative/NaN entry, or sums to
/// zero.
fn vose_build(weights: &[f64], scratch: &mut AliasScratch) {
    let m = weights.len();
    assert!(m > 0, "AliasTable: empty weights");
    let mut total = 0.0f64;
    for &w in weights {
        assert!(w >= 0.0 && w.is_finite(), "AliasTable: bad weight {w}");
        total += w;
    }
    assert!(total > 0.0, "AliasTable: zero total weight");

    let first_positive = weights
        .iter()
        .position(|&w| w > 0.0)
        .expect("positive total implies positive entry");

    let AliasScratch {
        scaled,
        prob,
        alias,
        small,
        large,
    } = scratch;
    scaled.clear();
    scaled.extend(weights.iter().map(|&w| w * m as f64 / total));
    prob.clear();
    prob.resize(m, 0.0);
    alias.clear();
    alias.resize(m, first_positive);
    small.clear();
    large.clear();
    for (i, &s) in scaled.iter().enumerate() {
        if s < 1.0 {
            small.push(i);
        } else {
            large.push(i);
        }
    }
    while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
        small.pop();
        prob[s] = scaled[s];
        alias[s] = l;
        scaled[l] += scaled[s] - 1.0;
        if scaled[l] < 1.0 {
            large.pop();
            small.push(l);
        }
    }
    // Leftovers hold (numerically) exactly unit mass — accept directly.
    // A zero-weight entry can only be left over through floating-point
    // residue; keep it unreachable rather than rounding it up.
    for &i in large.iter().chain(small.iter()) {
        prob[i] = if weights[i] > 0.0 { 1.0 } else { 0.0 };
    }
}

impl AliasTable {
    /// Build from non-negative weights (need not be normalized).
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative/NaN entry, or sums
    /// to zero.
    pub fn new(weights: &[f64]) -> Self {
        let mut scratch = AliasScratch::default();
        vose_build(weights, &mut scratch);
        Self {
            prob: scratch.prob,
            alias: scratch.alias,
        }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one category index.
    #[inline]
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        let i = gen_index(rng, self.prob.len() as u64) as usize;
        if gen_f64(rng) < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

/// Alias table packed for single-word sampling: one `u64` entry per
/// category holding the 32-bit-quantized acceptance probability and the
/// alias index, consumed by [`PackedAlias::sample_word`] with **one** random
/// word (the high 32 bits pick the column, the low 32 bits decide
/// acceptance — independent bits of one uniform word).
///
/// Quantization makes draws off by at most `2⁻³²` per category relative to
/// the exact weights (the column pick adds another ≤ `m·2⁻³²`); the
/// simulation engines accept this in exchange for halving the random words
/// and the hash work on their hottest path.
#[derive(Debug, Clone, Default)]
pub struct PackedAlias {
    /// `(accept_u32 << 32) | alias_index`.
    entries: Vec<u64>,
}

impl PackedAlias {
    /// Build from non-negative weights (same contract as
    /// [`AliasTable::new`]).
    pub fn new(weights: &[f64]) -> Self {
        let mut this = Self::default();
        this.rebuild_from(weights, &mut AliasScratch::default());
        this
    }

    /// Rebuild this table in place from new weights, reusing both the
    /// entry buffer and the caller's [`AliasScratch`]: at steady state
    /// (weights of at most the previously seen length) the rebuild
    /// allocates nothing. The result is **bit-identical** to
    /// `PackedAlias::new(weights)` — both run the same Vose construction
    /// and packing — so callers may hot-swap a per-round `new` for a
    /// parked rebuild without changing a single draw.
    ///
    /// # Panics
    /// Same contract as [`AliasTable::new`].
    pub fn rebuild_from(&mut self, weights: &[f64], scratch: &mut AliasScratch) {
        vose_build(weights, scratch);
        self.entries.clear();
        self.entries
            .extend(
                scratch
                    .prob
                    .iter()
                    .zip(&scratch.alias)
                    .enumerate()
                    .map(|(i, (&p, &a))| {
                        // Full columns alias to themselves so the saturated
                        // acceptance test can never redirect them.
                        let (accept, alias) = if p >= 1.0 {
                            (u32::MAX, i)
                        } else {
                            ((p * 4294967296.0) as u32, a)
                        };
                        ((accept as u64) << 32) | alias as u64
                    }),
            );
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty (only true for a [`Default`] table that
    /// has never been rebuilt; sampling an empty table panics).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Draw one category from a single uniform 64-bit word.
    #[inline(always)]
    pub fn sample_word(&self, word: u64) -> usize {
        let idx = (((word >> 32) * self.entries.len() as u64) >> 32) as usize;
        let e = self.entries[idx];
        if (word as u32 as u64) < (e >> 32) {
            idx
        } else {
            (e & 0xFFFF_FFFF) as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;

    #[test]
    fn frequencies_match_weights() {
        let weights = [1.0, 3.0, 6.0];
        let table = AliasTable::new(&weights);
        let mut rng = Xoshiro256pp::seed(1);
        let trials = 100_000;
        let mut counts = [0u64; 3];
        for _ in 0..trials {
            counts[table.sample(&mut rng)] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let freq = counts[i] as f64 / trials as f64;
            let expect = w / 10.0;
            assert!((freq - expect).abs() < 0.01, "cat {i}: {freq} vs {expect}");
        }
    }

    #[test]
    fn zero_weight_never_sampled() {
        let table = AliasTable::new(&[0.0, 5.0, 0.0, 1.0]);
        let mut rng = Xoshiro256pp::seed(2);
        for _ in 0..10_000 {
            let idx = table.sample(&mut rng);
            assert!(idx == 1 || idx == 3, "sampled zero-weight category {idx}");
        }
    }

    #[test]
    fn single_category() {
        let table = AliasTable::new(&[42.0]);
        let mut rng = Xoshiro256pp::seed(3);
        for _ in 0..100 {
            assert_eq!(table.sample(&mut rng), 0);
        }
        assert_eq!(table.len(), 1);
        assert!(!table.is_empty());
    }

    #[test]
    fn uniform_weights() {
        let table = AliasTable::new(&[2.0; 64]);
        let mut rng = Xoshiro256pp::seed(4);
        let mut seen = [false; 64];
        for _ in 0..20_000 {
            seen[table.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s), "some category never sampled");
    }

    #[test]
    #[should_panic]
    fn rejects_zero_total() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    fn packed_frequencies_match_weights() {
        let weights = [1.0, 3.0, 6.0];
        let table = PackedAlias::new(&weights);
        let mut rng = Xoshiro256pp::seed(8);
        let trials = 200_000;
        let mut counts = [0u64; 3];
        for _ in 0..trials {
            counts[table.sample_word(rng.next_u64())] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let freq = counts[i] as f64 / trials as f64;
            let expect = w / 10.0;
            assert!((freq - expect).abs() < 0.01, "cat {i}: {freq} vs {expect}");
        }
    }

    #[test]
    fn packed_zero_weight_never_sampled() {
        let table = PackedAlias::new(&[0.0, 5.0, 0.0, 1.0]);
        let mut rng = Xoshiro256pp::seed(9);
        for _ in 0..20_000 {
            let idx = table.sample_word(rng.next_u64());
            assert!(idx == 1 || idx == 3, "sampled zero-weight category {idx}");
        }
    }

    #[test]
    fn packed_single_category() {
        let table = PackedAlias::new(&[7.0]);
        assert_eq!(table.len(), 1);
        for w in [0u64, 1, u64::MAX, 0xDEAD_BEEF_0000_0001] {
            assert_eq!(table.sample_word(w), 0);
        }
    }

    #[test]
    fn dirty_rebuild_is_bit_identical_to_fresh() {
        // A reused table + scratch, dirtied by builds of various shapes
        // (longer, shorter, zero-weight entries), must end bit-identical to
        // a fresh construction for the same weights.
        let shapes: Vec<Vec<f64>> = vec![
            vec![1.0; 300],
            vec![0.0, 5.0, 0.0, 1.0],
            (0..64).map(|i| (i % 7) as f64 + 0.25).collect(),
            vec![42.0],
            (0..1000).map(|i| 1.0 / (i + 1) as f64).collect(),
        ];
        let mut reused = PackedAlias::default();
        let mut scratch = AliasScratch::default();
        for weights in shapes.iter().chain(shapes.iter().rev()) {
            reused.rebuild_from(weights, &mut scratch);
            let fresh = PackedAlias::new(weights);
            assert_eq!(
                reused.entries,
                fresh.entries,
                "dirty rebuild diverged for m = {}",
                weights.len()
            );
        }
    }

    #[test]
    fn default_packed_alias_is_empty() {
        let table = PackedAlias::default();
        assert!(table.is_empty());
        assert_eq!(table.len(), 0);
    }
}

//! Exact binomial sampling and log-space pmf/cdf.

use rand::RngCore;

use super::ln_factorial;
use crate::rng::gen_f64;

/// Threshold on `n·min(p, 1-p)` below which inversion (BINV) is used and at
/// or above which transformed rejection (BTRS) takes over.
const BINV_THRESHOLD: f64 = 10.0;

/// The binomial distribution `Bin(n, p)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Create `Bin(n, p)`.
    ///
    /// # Panics
    /// Panics if `p ∉ [0, 1]` or `p` is NaN.
    pub fn new(n: u64, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "Binomial: p = {p} outside [0, 1]");
        Self { n, p }
    }

    /// Number of trials.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// `E[X] = n·p`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// `Var[X] = n·p·(1-p)`.
    pub fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }

    /// Draw one sample.
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        let (n, p) = (self.n, self.p);
        if n == 0 || p <= 0.0 {
            return 0;
        }
        if p >= 1.0 {
            return n;
        }
        // Work with q = min(p, 1-p) and mirror the result if needed.
        let flipped = p > 0.5;
        let q = if flipped { 1.0 - p } else { p };
        let x = if n as f64 * q < BINV_THRESHOLD {
            sample_binv(rng, n, q)
        } else {
            sample_btrs(rng, n, q)
        };
        if flipped {
            n - x
        } else {
            x
        }
    }
}

/// BINV: sequential inversion of the cdf. Requires `n·p` small so the loop
/// terminates quickly; `p ≤ 0.5` so `(1-p)^n` cannot underflow.
fn sample_binv<R: RngCore + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    let q = 1.0 - p;
    let s = p / q;
    let a = (n + 1) as f64 * s;
    // q^n in log space: `powi` takes an i32 exponent, and this path runs
    // with n up to 2^52 (tiny conditional p in the histogram engine's
    // multinomial chain). n·p < 10 bounds the result below by e^-10-ish,
    // so the exp never underflows.
    let r0 = (n as f64 * q.ln()).exp();
    loop {
        let mut r = r0;
        let mut u = gen_f64(rng);
        let mut x = 0u64;
        let mut ok = true;
        while u > r {
            u -= r;
            x += 1;
            if x > n {
                // Floating-point leakage past the support; redraw.
                ok = false;
                break;
            }
            r *= a / x as f64 - s;
        }
        if ok {
            return x;
        }
    }
}

/// BTRS: Hörmann's transformed rejection with squeeze (1993). Valid for
/// `p ≤ 0.5` and `n·p ≥ 10`.
fn sample_btrs<R: RngCore + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    let nf = n as f64;
    let q = 1.0 - p;
    let spq = (nf * p * q).sqrt();

    let b = 1.15 + 2.53 * spq;
    let a = -0.0873 + 0.0248 * b + 0.01 * p;
    let c = nf * p + 0.5;
    let v_r = 0.92 - 4.2 / b;
    let u_rv_r = 0.86 * v_r;

    let alpha = (2.83 + 5.1 / b) * spq;
    let lpq = (p / q).ln();
    let m = ((nf + 1.0) * p).floor();
    let h = ln_factorial(m as u64) + ln_factorial(n - m as u64);

    loop {
        let mut v = gen_f64(rng);
        if v <= u_rv_r {
            // Fast acceptance region (no logarithms).
            let u = v / v_r - 0.43;
            let k = ((2.0 * a / (0.5 - u.abs()) + b) * u + c).floor();
            return k as u64;
        }
        let u;
        if v >= v_r {
            u = gen_f64(rng) - 0.5;
        } else {
            let w = v / v_r - 0.93;
            u = 0.5f64.copysign(w) - w;
            v = gen_f64(rng) * v_r;
        }
        let us = 0.5 - u.abs();
        if us < 1e-12 {
            continue;
        }
        let kf = ((2.0 * a / us + b) * u + c).floor();
        if kf < 0.0 || kf > nf {
            continue;
        }
        let k = kf as u64;
        let log_accept = h - ln_factorial(k) - ln_factorial(n - k) + (kf - m) * lpq;
        let lhs = (v * alpha / (a / (us * us) + b)).ln();
        if lhs <= log_accept {
            return k;
        }
    }
}

/// `P(Bin(n, p) = k)`.
pub fn binomial_pmf(n: u64, p: f64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    if p <= 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p >= 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    let ln_pmf =
        super::ln_binomial_coeff(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln();
    ln_pmf.exp()
}

/// `P(Bin(n, p) ≤ k)` by direct summation (exact to f64 accumulation).
pub fn binomial_cdf(n: u64, p: f64, k: u64) -> f64 {
    if k >= n {
        return 1.0;
    }
    let mut acc = 0.0;
    for i in 0..=k {
        acc += binomial_pmf(n, p, i);
    }
    acc.min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;

    #[test]
    fn edge_cases() {
        let mut rng = Xoshiro256pp::seed(1);
        assert_eq!(Binomial::new(0, 0.5).sample(&mut rng), 0);
        assert_eq!(Binomial::new(100, 0.0).sample(&mut rng), 0);
        assert_eq!(Binomial::new(100, 1.0).sample(&mut rng), 100);
    }

    #[test]
    fn support_bounds_hold() {
        let mut rng = Xoshiro256pp::seed(2);
        for &(n, p) in &[(5u64, 0.3f64), (1000, 0.5), (1000, 0.001), (50, 0.97)] {
            for _ in 0..2000 {
                assert!(Binomial::new(n, p).sample(&mut rng) <= n);
            }
        }
    }

    #[test]
    fn binv_mean_and_variance() {
        // np = 5 → BINV path.
        let d = Binomial::new(1000, 0.005);
        let mut rng = Xoshiro256pp::seed(3);
        let trials = 50_000;
        let mut sum = 0u64;
        let mut sum2 = 0f64;
        for _ in 0..trials {
            let x = d.sample(&mut rng);
            sum += x;
            sum2 += (x * x) as f64;
        }
        let mean = sum as f64 / trials as f64;
        let var = sum2 / trials as f64 - mean * mean;
        assert!((mean - d.mean()).abs() < 4.0 * (d.variance() / trials as f64).sqrt());
        assert!(
            (var - d.variance()).abs() < 0.35,
            "var {var} vs {}",
            d.variance()
        );
    }

    #[test]
    fn btrs_mean_and_variance() {
        // np = 300 → BTRS path.
        let d = Binomial::new(1000, 0.3);
        let mut rng = Xoshiro256pp::seed(4);
        let trials = 50_000;
        let mut sum = 0u64;
        let mut sum2 = 0f64;
        for _ in 0..trials {
            let x = d.sample(&mut rng);
            sum += x;
            sum2 += (x * x) as f64;
        }
        let mean = sum as f64 / trials as f64;
        let var = sum2 / trials as f64 - mean * mean;
        assert!(
            (mean - d.mean()).abs() < 5.0 * (d.variance() / trials as f64).sqrt(),
            "mean {mean}"
        );
        assert!((var / d.variance() - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn binv_huge_n_tiny_p() {
        // n far beyond i32::MAX with n·p ≈ 5.5: the histogram engine's
        // small-bin conditional draws at 2^40-ball populations. A clamped
        // q^n exponent made this sample ≈ 0 instead of ≈ 5.5.
        let n = 1u64 << 40;
        let p = 5e-12;
        let d = Binomial::new(n, p);
        let mut rng = Xoshiro256pp::seed(77);
        let trials = 20_000;
        let sum: u64 = (0..trials).map(|_| d.sample(&mut rng)).sum();
        let mean = sum as f64 / trials as f64;
        let se = (d.variance() / trials as f64).sqrt();
        assert!(
            (mean - d.mean()).abs() < 6.0 * se,
            "mean {mean} vs expected {}",
            d.mean()
        );
    }

    #[test]
    fn high_p_mirrors() {
        // p = 0.9 flips to q = 0.1 internally.
        let d = Binomial::new(500, 0.9);
        let mut rng = Xoshiro256pp::seed(5);
        let trials = 30_000;
        let sum: u64 = (0..trials).map(|_| d.sample(&mut rng)).sum();
        let mean = sum as f64 / trials as f64;
        assert!(
            (mean - 450.0).abs() < 5.0 * (d.variance() / trials as f64).sqrt(),
            "mean {mean}"
        );
    }

    #[test]
    fn pmf_sums_to_one() {
        for &(n, p) in &[(20u64, 0.3f64), (100, 0.77), (1, 0.5), (0, 0.2)] {
            let total: f64 = (0..=n).map(|k| binomial_pmf(n, p, k)).sum();
            assert!((total - 1.0).abs() < 1e-10, "n={n} p={p}: {total}");
        }
    }

    #[test]
    fn cdf_terminal_values() {
        assert_eq!(binomial_cdf(10, 0.4, 10), 1.0);
        assert_eq!(binomial_cdf(10, 0.4, 99), 1.0);
        assert!((binomial_cdf(10, 0.0, 0) - 1.0).abs() < 1e-12);
        assert!(binomial_cdf(10, 0.4, 0) > 0.0);
    }

    #[test]
    fn empirical_cdf_matches_analytic() {
        // Kolmogorov-style check on the BTRS regime.
        let (n, p) = (200u64, 0.25f64);
        let d = Binomial::new(n, p);
        let mut rng = Xoshiro256pp::seed(6);
        let trials = 40_000usize;
        let mut counts = vec![0u64; n as usize + 1];
        for _ in 0..trials {
            counts[d.sample(&mut rng) as usize] += 1;
        }
        let mut emp = 0.0;
        let mut worst: f64 = 0.0;
        for k in 0..=n {
            emp += counts[k as usize] as f64 / trials as f64;
            worst = worst.max((emp - binomial_cdf(n, p, k)).abs());
        }
        // K-S 99.9% critical value ≈ 1.95/√trials ≈ 0.0098.
        assert!(worst < 0.011, "K-S distance {worst}");
    }
}

//! Random variates built on raw 64-bit generator outputs.
//!
//! * [`bernoulli`] / [`geometric`] — the elementary coin and its waiting
//!   time;
//! * [`Binomial`] — exact binomial sampling: inversion (BINV) for small
//!   `n·p`, Hörmann's transformed rejection with squeeze (BTRS) for large;
//! * [`multinomial`] / [`multinomial_into`] — conditional-binomial chain
//!   with early exit on zero mass (the histogram engine's hot path);
//! * [`AliasTable`] — Vose's alias method for O(1) categorical draws;
//! * [`ln_factorial`] / [`ln_binomial_coeff`] / [`binomial_pmf`] /
//!   [`binomial_cdf`] — log-space combinatorics for the acceptance tests and
//!   the probability-bound comparisons in `bounds`.

mod alias;
mod binomial;
mod multinomial;

pub use alias::{AliasScratch, AliasTable, PackedAlias};
pub use binomial::{binomial_cdf, binomial_pmf, Binomial};
pub use multinomial::{multinomial, multinomial_into};

use rand::RngCore;

use crate::rng::{gen_f64, gen_f64_open};

/// `ln(n!)` — exact summation for small `n`, Stirling's series beyond.
///
/// Absolute error below `1e-10` over the full `u64` range.
pub fn ln_factorial(n: u64) -> f64 {
    const TABLE_SIZE: usize = 256;
    // Exact cumulative sums of ln(k) for n < TABLE_SIZE.
    static TABLE: std::sync::OnceLock<[f64; TABLE_SIZE]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0.0f64; TABLE_SIZE];
        for k in 2..TABLE_SIZE {
            t[k] = t[k - 1] + (k as f64).ln();
        }
        t
    });
    if (n as usize) < TABLE_SIZE {
        return table[n as usize];
    }
    // Stirling's series: ln n! = n ln n − n + ½ ln(2πn) + 1/(12n) − 1/(360n³)
    // + 1/(1260n⁵) − …; at n ≥ 256 the truncation error is ≪ 1e-12.
    let x = n as f64;
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    x * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI * x).ln() + inv / 12.0 - inv * inv2 / 360.0
        + inv * inv2 * inv2 / 1260.0
}

/// `ln C(n, k)`; `-inf` for `k > n`.
pub fn ln_binomial_coeff(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// One biased coin flip: `true` with probability `p`.
///
/// # Panics
/// Panics in debug builds if `p ∉ [0, 1]`.
#[inline]
pub fn bernoulli<R: RngCore + ?Sized>(rng: &mut R, p: f64) -> bool {
    debug_assert!((0.0..=1.0).contains(&p), "bernoulli: p = {p}");
    gen_f64(rng) < p
}

/// Number of failures before the first success of a `p`-coin
/// (`P(X = k) = (1-p)^k p`), sampled by inversion.
///
/// # Panics
/// Panics if `p ∉ (0, 1]`.
pub fn geometric<R: RngCore + ?Sized>(rng: &mut R, p: f64) -> u64 {
    assert!(p > 0.0 && p <= 1.0, "geometric: p = {p}");
    if p >= 1.0 {
        return 0;
    }
    let u = gen_f64_open(rng);
    (u.ln() / (1.0 - p).ln()).floor() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;

    #[test]
    fn ln_factorial_small_exact() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!((ln_factorial(2) - 2.0f64.ln()).abs() < 1e-14);
        assert!((ln_factorial(5) - 120.0f64.ln()).abs() < 1e-12);
        assert!((ln_factorial(10) - 3628800.0f64.ln()).abs() < 1e-11);
    }

    #[test]
    fn ln_factorial_continuous_at_table_boundary() {
        // Stirling at 256 must agree with the recurrence from the table.
        let from_table = ln_factorial(255) + 256.0f64.ln();
        assert!((ln_factorial(256) - from_table).abs() < 1e-9);
        let big = ln_factorial(1_000_000);
        let big_next = ln_factorial(1_000_001);
        assert!((big_next - big - 1_000_001.0f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn ln_binomial_matches_pascal() {
        // C(10, 3) = 120.
        assert!((ln_binomial_coeff(10, 3) - 120.0f64.ln()).abs() < 1e-11);
        assert_eq!(ln_binomial_coeff(5, 9), f64::NEG_INFINITY);
        assert_eq!(ln_binomial_coeff(7, 0), 0.0);
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = Xoshiro256pp::seed(1);
        let trials = 100_000;
        let hits = (0..trials).filter(|_| bernoulli(&mut rng, 0.3)).count();
        let freq = hits as f64 / trials as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn geometric_mean() {
        let mut rng = Xoshiro256pp::seed(2);
        let p = 0.25f64;
        let trials = 50_000;
        let total: u64 = (0..trials).map(|_| geometric(&mut rng, p)).sum();
        let mean = total as f64 / trials as f64;
        // E[X] = (1-p)/p = 3.
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert_eq!(geometric(&mut rng, 1.0), 0);
    }
}

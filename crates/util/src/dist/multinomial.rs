//! Multinomial sampling via the conditional-binomial chain.

use rand::RngCore;

use super::Binomial;

/// Distribute `n` balls over `probs.len()` categories, writing counts into
/// `out`. The draw walks the categories once, sampling each count from the
/// conditional binomial given the balls and probability mass remaining —
/// and **exits early** the moment either hits zero, which is what makes the
/// histogram engine's near-consensus rounds cheap (one bin holds ~all mass,
/// every other bin resolves without touching the sampler).
///
/// Probabilities need not be normalized; only their ratios matter.
///
/// # Panics
/// Panics if `out.len() != probs.len()`, if `probs` is empty while `n > 0`,
/// if any probability is negative/NaN, or if the total mass is zero while
/// `n > 0`.
pub fn multinomial_into<R: RngCore + ?Sized>(rng: &mut R, n: u64, probs: &[f64], out: &mut [u64]) {
    assert_eq!(out.len(), probs.len(), "multinomial buffer size mismatch");
    let mut rest: f64 = 0.0;
    for &p in probs {
        assert!(
            p >= 0.0 && p.is_finite(),
            "multinomial: bad probability {p}"
        );
        rest += p;
    }
    if n == 0 {
        out.fill(0);
        return;
    }
    assert!(rest > 0.0, "multinomial: zero total mass with n = {n}");

    let mut remaining = n;
    for (i, (&p, slot)) in probs.iter().zip(out.iter_mut()).enumerate() {
        if remaining == 0 {
            // Early exit: no balls left — zero the tail without sampling.
            out[i..].fill(0);
            return;
        }
        if p <= 0.0 {
            // Early exit on zero mass: this category cannot receive balls.
            *slot = 0;
            continue;
        }
        if p >= rest {
            // Last category with mass: everything left lands here.
            *slot = remaining;
            remaining = 0;
            rest = 0.0;
            continue;
        }
        let cond = (p / rest).clamp(0.0, 1.0);
        let draw = Binomial::new(remaining, cond).sample(rng);
        *slot = draw;
        remaining -= draw;
        rest -= p;
    }
    if remaining > 0 {
        // Numerical corner: `rest` decayed to ~0 before the last massive
        // category; conservation wins, residual balls join the last
        // positive-mass bin.
        let idx = probs
            .iter()
            .rposition(|&p| p > 0.0)
            .expect("positive total mass implies a positive entry");
        out[idx] += remaining;
    }
}

/// Allocating variant of [`multinomial_into`].
pub fn multinomial<R: RngCore + ?Sized>(rng: &mut R, n: u64, probs: &[f64]) -> Vec<u64> {
    let mut out = vec![0u64; probs.len()];
    if n == 0 {
        return out;
    }
    multinomial_into(rng, n, probs, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;

    #[test]
    fn conserves_total() {
        let mut rng = Xoshiro256pp::seed(1);
        for &n in &[0u64, 1, 17, 1000, 1 << 40] {
            let probs = [0.1, 0.0, 0.4, 0.25, 0.25];
            let out = multinomial(&mut rng, n, &probs);
            assert_eq!(out.iter().sum::<u64>(), n);
            assert_eq!(out[1], 0, "zero-mass category must stay empty");
        }
    }

    #[test]
    fn unnormalized_weights_work() {
        let mut rng = Xoshiro256pp::seed(2);
        let out = multinomial(&mut rng, 10_000, &[2.0, 6.0]);
        assert_eq!(out.iter().sum::<u64>(), 10_000);
        // 1:3 ratio within sampling noise.
        let frac = out[0] as f64 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn single_category_takes_all() {
        let mut rng = Xoshiro256pp::seed(3);
        assert_eq!(multinomial(&mut rng, 55, &[3.7]), vec![55]);
    }

    #[test]
    fn mass_concentrated_in_first_bin_exits_early() {
        // With all mass up front, the tail is zeroed without sampling; the
        // observable contract is exact conservation and empty tail.
        let mut rng = Xoshiro256pp::seed(4);
        let mut probs = vec![0.0; 100];
        probs[0] = 1.0;
        let out = multinomial(&mut rng, 1 << 30, &probs);
        assert_eq!(out[0], 1 << 30);
        assert!(out[1..].iter().all(|&c| c == 0));
    }

    #[test]
    fn marginals_are_binomial() {
        let mut rng = Xoshiro256pp::seed(5);
        let probs = [0.2, 0.3, 0.5];
        let n = 600u64;
        let trials = 20_000;
        let mut sums = [0u64; 3];
        for _ in 0..trials {
            let out = multinomial(&mut rng, n, &probs);
            for (s, &o) in sums.iter_mut().zip(&out) {
                *s += o;
            }
        }
        for (i, &p) in probs.iter().enumerate() {
            let mean = sums[i] as f64 / trials as f64;
            let expect = n as f64 * p;
            let se = (n as f64 * p * (1.0 - p) / trials as f64).sqrt();
            assert!(
                (mean - expect).abs() < 6.0 * se,
                "category {i}: mean {mean} vs {expect}"
            );
        }
    }

    #[test]
    fn zero_balls_zero_everything() {
        let mut rng = Xoshiro256pp::seed(6);
        let mut out = vec![9u64; 4];
        multinomial_into(&mut rng, 0, &[0.25; 4], &mut out);
        assert_eq!(out, vec![0; 4]);
    }

    #[test]
    #[should_panic]
    fn zero_mass_with_balls_panics() {
        let mut rng = Xoshiro256pp::seed(7);
        multinomial(&mut rng, 5, &[0.0, 0.0]);
    }
}

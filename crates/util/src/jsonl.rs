//! Minimal JSON / JSON-Lines support for result stores and bench emitters.
//!
//! The offline dependency set has no `serde`, and before this module every
//! JSON producer in the workspace hand-assembled strings with `write!` and
//! no escaping. [`JsonObj`] / [`JsonArr`] are tiny append-only builders that
//! escape every string field; [`parse_flat`] reads one *flat* object (scalar
//! fields only) back, which is all the JSONL result store needs.
//!
//! Numbers are written either with Rust's shortest-roundtrip `Display`
//! ([`JsonObj::f64_field`], lossless for the store) or with fixed decimals
//! ([`JsonObj::fixed_field`], for human-facing bench output). Non-finite
//! floats become `null` — JSON has no NaN/inf.

use std::fmt::Write as _;

/// Append the JSON string-literal escaping of `s` (without quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// The quoted JSON string literal for `s`.
pub fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

fn push_f64(buf: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(buf, "{v}");
    } else {
        buf.push_str("null");
    }
}

/// Builder for one JSON object.
#[derive(Debug, Clone, Default)]
pub struct JsonObj {
    buf: String,
    first: bool,
}

impl JsonObj {
    /// Start an empty object.
    pub fn new() -> Self {
        Self {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push_str(", ");
        }
        self.first = false;
        self.buf.push('"');
        escape_into(&mut self.buf, k);
        self.buf.push_str("\": ");
    }

    /// Add a string field (escaped).
    pub fn str_field(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push('"');
        escape_into(&mut self.buf, v);
        self.buf.push('"');
        self
    }

    /// Add an unsigned integer field.
    pub fn u64_field(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Add a float field with shortest-roundtrip formatting (`null` when
    /// non-finite).
    pub fn f64_field(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        push_f64(&mut self.buf, v);
        self
    }

    /// Add a float field with fixed decimals (`null` when non-finite).
    pub fn fixed_field(mut self, k: &str, v: f64, decimals: usize) -> Self {
        self.key(k);
        if v.is_finite() {
            let _ = write!(self.buf, "{v:.decimals$}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Add a boolean field.
    pub fn bool_field(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Add an explicit `null` field.
    pub fn null_field(mut self, k: &str) -> Self {
        self.key(k);
        self.buf.push_str("null");
        self
    }

    /// Add a pre-rendered JSON value (nested object or array).
    pub fn raw_field(mut self, k: &str, json: &str) -> Self {
        self.key(k);
        self.buf.push_str(json);
        self
    }

    /// Finish, returning the rendered object.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Builder for one JSON array of pre-rendered values.
#[derive(Debug, Clone, Default)]
pub struct JsonArr {
    buf: String,
    first: bool,
}

impl JsonArr {
    /// Start an empty array.
    pub fn new() -> Self {
        Self {
            buf: String::from("["),
            first: true,
        }
    }

    /// Append a pre-rendered JSON value.
    pub fn push_raw(&mut self, json: &str) {
        if !self.first {
            self.buf.push_str(", ");
        }
        self.first = false;
        self.buf.push_str(json);
    }

    /// Finish, returning the rendered array.
    pub fn finish(mut self) -> String {
        self.buf.push(']');
        self.buf
    }
}

/// A scalar value parsed back from a flat JSON object.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonScalar {
    /// A string (unescaped).
    Str(String),
    /// An unsigned integer token, kept exact (a `u64` does not survive a
    /// round trip through `f64` above 2⁵³ — seeds routinely exceed that).
    Int(u64),
    /// Any other JSON number.
    Num(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl JsonScalar {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonScalar::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number (integers lose precision
    /// above 2⁵³ here — use [`JsonScalar::as_u64`] for exact values).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonScalar::Int(x) => Some(*x as f64),
            JsonScalar::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric payload as an exact `u64` (must have been written as a
    /// non-negative integer token).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonScalar::Int(x) => Some(*x),
            JsonScalar::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x < 9_007_199_254_740_992.0 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }
}

/// Fields of one flat JSON object, in declaration order.
pub type FlatObject = Vec<(String, JsonScalar)>;

/// Look up a field by key.
pub fn get<'a>(obj: &'a FlatObject, key: &str) -> Option<&'a JsonScalar> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {} in flat JSON",
                b as char, self.pos
            ))
        }
    }

    fn parse_string(&mut self, src: &'a str) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or("unterminated string")? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("dangling escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = src
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|e| format!("\\u: {e}"))?;
                            // Basic-plane only; the writer never emits
                            // surrogate pairs (it writes raw UTF-8).
                            out.push(char::from_u32(code).ok_or("invalid \\u codepoint")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                _ => {
                    // Consume one UTF-8 character.
                    let rest = &src[self.pos..];
                    let c = rest.chars().next().ok_or("invalid UTF-8 boundary")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_scalar(&mut self, src: &'a str) -> Result<JsonScalar, String> {
        match self.peek().ok_or("missing value")? {
            b'"' => Ok(JsonScalar::Str(self.parse_string(src)?)),
            b't' => self.keyword("true", JsonScalar::Bool(true)),
            b'f' => self.keyword("false", JsonScalar::Bool(false)),
            b'n' => self.keyword("null", JsonScalar::Null),
            b'{' | b'[' => Err("nested values are not supported by parse_flat".into()),
            _ => {
                let start = self.pos;
                while self.peek().is_some_and(|b| {
                    b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
                }) {
                    self.pos += 1;
                }
                let text = &src[start..self.pos];
                if let Ok(i) = text.parse::<u64>() {
                    return Ok(JsonScalar::Int(i));
                }
                text.parse::<f64>()
                    .map(JsonScalar::Num)
                    .map_err(|e| format!("bad number '{text}': {e}"))
            }
        }
    }

    fn keyword(&mut self, word: &str, value: JsonScalar) -> Result<JsonScalar, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected '{word}' at byte {}", self.pos))
        }
    }
}

/// Parse one flat JSON object (string/number/bool/null fields only).
///
/// Rejects nested objects/arrays and trailing garbage — the result-store
/// records and campaign headers are all flat by construction.
pub fn parse_flat(line: &str) -> Result<FlatObject, String> {
    let mut cur = Cursor {
        bytes: line.as_bytes(),
        pos: 0,
    };
    cur.skip_ws();
    cur.expect(b'{')?;
    let mut fields = FlatObject::new();
    cur.skip_ws();
    if cur.peek() == Some(b'}') {
        cur.pos += 1;
    } else {
        loop {
            cur.skip_ws();
            let key = cur.parse_string(line)?;
            cur.skip_ws();
            cur.expect(b':')?;
            cur.skip_ws();
            let value = cur.parse_scalar(line)?;
            fields.push((key, value));
            cur.skip_ws();
            match cur.peek() {
                Some(b',') => cur.pos += 1,
                Some(b'}') => {
                    cur.pos += 1;
                    break;
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", cur.pos)),
            }
        }
    }
    cur.skip_ws();
    if cur.pos != line.len() {
        return Err(format!("trailing bytes after object at {}", cur.pos));
    }
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips() {
        let nasty = "he said \"hi\"\\ \n\t\r \u{1} κόσμε";
        let line = JsonObj::new().str_field("s", nasty).finish();
        let parsed = parse_flat(&line).expect("parse");
        assert_eq!(get(&parsed, "s").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn all_scalar_kinds_round_trip() {
        let line = JsonObj::new()
            .str_field("name", "two-bins(512)")
            .u64_field("n", 1024)
            .f64_field("mean", 13.625)
            .bool_field("ok", true)
            .null_field("missing")
            .finish();
        let obj = parse_flat(&line).expect("parse");
        assert_eq!(get(&obj, "n").unwrap().as_u64(), Some(1024));
        assert_eq!(get(&obj, "mean").unwrap().as_f64(), Some(13.625));
        assert_eq!(get(&obj, "ok"), Some(&JsonScalar::Bool(true)));
        assert_eq!(get(&obj, "missing"), Some(&JsonScalar::Null));
        assert_eq!(get(&obj, "absent"), None);
    }

    #[test]
    fn nan_becomes_null() {
        let line = JsonObj::new().f64_field("x", f64::NAN).finish();
        assert_eq!(line, "{\"x\": null}");
    }

    #[test]
    fn fixed_decimals() {
        let line = JsonObj::new().fixed_field("x", 1.23456, 2).finish();
        assert_eq!(line, "{\"x\": 1.23}");
    }

    #[test]
    fn arrays_nest_into_objects() {
        let mut arr = JsonArr::new();
        arr.push_raw(&JsonObj::new().u64_field("n", 1).finish());
        arr.push_raw(&JsonObj::new().u64_field("n", 2).finish());
        let line = JsonObj::new().raw_field("cells", &arr.finish()).finish();
        assert_eq!(line, "{\"cells\": [{\"n\": 1}, {\"n\": 2}]}");
    }

    #[test]
    fn shortest_roundtrip_is_lossless() {
        for &x in &[0.1, 1.0 / 3.0, 123456789.123456, 2.0_f64.powi(-40)] {
            let line = JsonObj::new().f64_field("x", x).finish();
            let obj = parse_flat(&line).expect("parse");
            assert_eq!(get(&obj, "x").unwrap().as_f64(), Some(x), "lossy: {x}");
        }
    }

    #[test]
    fn empty_object_parses() {
        assert!(parse_flat("{}").expect("parse").is_empty());
        assert!(parse_flat("  { }  ").expect("parse").is_empty());
    }

    #[test]
    fn rejects_nested_and_garbage() {
        assert!(parse_flat("{\"a\": {\"b\": 1}}").is_err());
        assert!(parse_flat("{\"a\": [1]}").is_err());
        assert!(parse_flat("{\"a\": 1} extra").is_err());
        assert!(parse_flat("{\"a\": 1").is_err());
        assert!(parse_flat("").is_err());
    }

    #[test]
    fn negative_and_exponent_numbers() {
        let obj = parse_flat("{\"a\": -1.5e-3, \"b\": 1e6}").expect("parse");
        assert_eq!(get(&obj, "a").unwrap().as_f64(), Some(-0.0015));
        assert_eq!(get(&obj, "b").unwrap().as_u64(), Some(1_000_000));
    }

    #[test]
    fn u64_round_trips_above_f64_precision() {
        for v in [(1u64 << 53) + 1, u64::MAX, 0x20000000000001] {
            let line = JsonObj::new().u64_field("seed", v).finish();
            let obj = parse_flat(&line).expect("parse");
            assert_eq!(get(&obj, "seed").unwrap().as_u64(), Some(v), "lossy: {v}");
        }
    }
}

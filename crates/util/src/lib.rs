//! # stabcon-util
//!
//! Substrate crate for the `stabcon` reproduction of *"Stabilizing Consensus
//! with the Power of Two Choices"* (Doerr, Goldberg, Minder, Sauerwald,
//! Scheideler; SPAA 2011).
//!
//! Everything in here is infrastructure the paper's simulation study needs
//! but which is not available in the allowed offline dependency set:
//!
//! * [`rng`] — deterministic pseudo-random generators: [`rng::SplitMix64`],
//!   [`rng::Xoshiro256pp`], and the stateless, counter-based
//!   [`rng::CounterRng`] used to make parallel simulation bit-reproducible
//!   for any thread count.
//! * [`dist`] — random variates built on raw 64-bit outputs: bounded uniforms
//!   (Lemire), Bernoulli, geometric, exact binomial (inversion + transformed
//!   rejection), multinomial, and Vose's alias method for categorical draws.
//! * [`stats`] — running moments, quantiles, confidence intervals, and
//!   ordinary least squares for the scaling-law fits in the experiment
//!   harness.
//! * [`bounds`] — the paper's probabilistic toolkit (Lemmas 5–7 Chernoff
//!   bounds, the normal-tail bounds used in Lemma 14) as numeric functions so
//!   experiments can compare empirical tails against theory.
//! * [`markov`] — absorbing Markov chain helpers matching §2.3 of the paper
//!   (Lemmas 8 and 9: multiplicative-drift chains and their hitting times).
//! * [`table`] — plain-text / markdown / CSV table rendering for the
//!   benchmark harness output.
//! * [`jsonl`] — a minimal JSON writer (with proper string escaping) and a
//!   flat-object parser for the campaign result store and bench emitters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod dist;
pub mod jsonl;
pub mod markov;
pub mod rng;
pub mod stats;
pub mod table;

pub use rng::{CounterRng, SplitMix64, Xoshiro256pp};

//! Absorbing Markov chain helpers (paper §2.3, Lemmas 8 and 9).
//!
//! The paper's phase arguments reduce progress to chains with
//! *multiplicative drift*: `Pr[X_{t+1} ≥ min(m, c₁·X_t)] ≥ 1 − e^{−c₂·X_t}`,
//! which absorb in `O(log m)` steps w.h.p. This module provides
//!
//! * a generic hitting-time simulator over any step function,
//! * a concrete [`MultiplicativeDriftChain`] implementing exactly the Lemma
//!   8/9 hypotheses, used by the drift experiments (E10/E11) as a calibrated
//!   reference process.

use rand::RngCore;

use crate::rng::gen_f64;
use crate::stats::RunningStats;

/// Outcome of a hitting-time simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hit {
    /// Absorbed at the given step count.
    At(u64),
    /// Not absorbed within the step budget.
    TimedOut,
}

impl Hit {
    /// Steps if absorbed.
    pub fn steps(self) -> Option<u64> {
        match self {
            Hit::At(t) => Some(t),
            Hit::TimedOut => None,
        }
    }
}

/// Simulate a chain from `x0` until `absorbed` holds or `max_steps` elapse.
///
/// `step(x, rng)` produces the next state.
pub fn hitting_time<S, R, FStep, FAbs>(
    rng: &mut R,
    x0: S,
    mut step: FStep,
    mut absorbed: FAbs,
    max_steps: u64,
) -> Hit
where
    R: RngCore + ?Sized,
    S: Clone,
    FStep: FnMut(&S, &mut R) -> S,
    FAbs: FnMut(&S) -> bool,
{
    let mut x = x0;
    for t in 0..max_steps {
        if absorbed(&x) {
            return Hit::At(t);
        }
        x = step(&x, rng);
    }
    if absorbed(&x) {
        Hit::At(max_steps)
    } else {
        Hit::TimedOut
    }
}

/// Estimate hitting-time statistics over repeated trials with per-trial
/// seeds supplied by the caller. Returns `(stats over absorbed trials,
/// number of timeouts)`.
pub fn hitting_time_stats<S, FStep, FAbs, FRng, R>(
    trials: u64,
    mut make_rng: FRng,
    x0: S,
    step: FStep,
    absorbed: FAbs,
    max_steps: u64,
) -> (RunningStats, u64)
where
    S: Clone,
    R: RngCore,
    FRng: FnMut(u64) -> R,
    FStep: Fn(&S, &mut R) -> S + Copy,
    FAbs: Fn(&S) -> bool + Copy,
{
    let mut stats = RunningStats::new();
    let mut timeouts = 0u64;
    for trial in 0..trials {
        let mut rng = make_rng(trial);
        match hitting_time(&mut rng, x0.clone(), step, absorbed, max_steps) {
            Hit::At(t) => stats.push(t as f64),
            Hit::TimedOut => timeouts += 1,
        }
    }
    (stats, timeouts)
}

/// The Lemma 8/9 reference chain on `{0, …, m}`:
///
/// * with probability `1 − e^{−c₂·x}` the state jumps to `min(m, ⌈c₁·x⌉)`;
/// * otherwise it falls back to `max(1, ⌊x/c₁⌋)` (an adversarial failure);
/// * from 0 the state becomes 1 with probability `c₃` (Lemma 8 restart) or
///   stays at 0 (Lemma 9's absorbing-zero variant if `c3 = 0`).
///
/// Lemma 8 then asserts absorption at `≥ c₄·log m` within `O(log m)` steps,
/// Lemma 9 absorption in `{0, m}`; the drift benches verify both claims
/// numerically on this chain.
#[derive(Debug, Clone, Copy)]
pub struct MultiplicativeDriftChain {
    /// Ceiling state `m`.
    pub m: u64,
    /// Growth factor `c₁ > 1`.
    pub c1: f64,
    /// Failure exponent `c₂ > 0`.
    pub c2: f64,
    /// Restart probability from 0 (`c₃`); set 0 for the Lemma 9 variant.
    pub c3: f64,
}

impl MultiplicativeDriftChain {
    /// Construct the chain; asserts the lemma hypotheses `c₁ > 1`, `c₂ > 0`.
    pub fn new(m: u64, c1: f64, c2: f64, c3: f64) -> Self {
        assert!(m >= 1);
        assert!(c1 > 1.0, "need c1 > 1");
        assert!(c2 > 0.0, "need c2 > 0");
        assert!((0.0..=1.0).contains(&c3));
        Self { m, c1, c2, c3 }
    }

    /// One transition.
    pub fn step<R: RngCore + ?Sized>(&self, x: u64, rng: &mut R) -> u64 {
        if x == 0 {
            return if self.c3 > 0.0 && gen_f64(rng) < self.c3 {
                1
            } else {
                0
            };
        }
        if x >= self.m {
            return self.m;
        }
        let fail_p = (-self.c2 * x as f64).exp();
        if gen_f64(rng) < fail_p {
            ((x as f64 / self.c1).floor() as u64).max(1)
        } else {
            (((x as f64) * self.c1).ceil() as u64).min(self.m)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;

    #[test]
    fn hitting_time_immediate() {
        let mut rng = Xoshiro256pp::seed(1);
        let hit = hitting_time(&mut rng, 5u64, |x, _| x + 1, |&x| x >= 5, 100);
        assert_eq!(hit, Hit::At(0));
    }

    #[test]
    fn hitting_time_deterministic_counter() {
        let mut rng = Xoshiro256pp::seed(2);
        let hit = hitting_time(&mut rng, 0u64, |x, _| x + 1, |&x| x == 10, 100);
        assert_eq!(hit, Hit::At(10));
    }

    #[test]
    fn hitting_time_timeout() {
        let mut rng = Xoshiro256pp::seed(3);
        let hit = hitting_time(&mut rng, 0u64, |x, _| x + 1, |&x| x > 1000, 10);
        assert_eq!(hit, Hit::TimedOut);
    }

    #[test]
    fn drift_chain_absorbs_in_log_m(// Lemma 8 numerically: time to reach m scales like log m.
    ) {
        let mut times = Vec::new();
        for &m in &[1u64 << 8, 1 << 12, 1 << 16] {
            let chain = MultiplicativeDriftChain::new(m, 2.0, 1.0, 0.5);
            let (stats, timeouts) = hitting_time_stats(
                200,
                |t| Xoshiro256pp::seed(1000 + t),
                1u64,
                |&x, rng| chain.step(x, rng),
                |&x| x >= m,
                10_000,
            );
            assert_eq!(timeouts, 0, "m = {m}");
            times.push(stats.mean());
        }
        // log m doubles m by factor 16 → hitting time ratio should be ≈ 2 per
        // 4 doublings with c1 = 2; allow generous slack but demand growth
        // bounded well below linear in m.
        assert!(times[1] > times[0]);
        assert!(times[2] > times[1]);
        assert!(times[2] < times[0] * 4.0, "not logarithmic: {times:?}");
    }

    #[test]
    fn lemma9_variant_absorbs_at_zero_or_m() {
        // With c3 = 0 and a weak drift, runs either die at 0 or reach m.
        let m = 1 << 10;
        let chain = MultiplicativeDriftChain::new(m, 1.5, 0.8, 0.0);
        let mut zeros = 0;
        let mut tops = 0;
        for t in 0..200 {
            let mut rng = Xoshiro256pp::seed(5000 + t);
            let mut x = 1u64;
            for _ in 0..5000 {
                if x == 0 || x >= m {
                    break;
                }
                x = chain.step(x, &mut rng);
            }
            if x == 0 {
                zeros += 1;
            } else if x >= m {
                tops += 1;
            }
        }
        assert_eq!(zeros + tops, 200, "all runs must absorb");
        assert!(tops > 0, "drift should usually push to m");
    }

    #[test]
    fn stats_helper_counts_timeouts() {
        let (stats, timeouts) = hitting_time_stats(
            10,
            Xoshiro256pp::seed,
            0u64,
            |&x, _| x, // never moves
            |&x| x > 0,
            5,
        );
        assert_eq!(stats.count(), 0);
        assert_eq!(timeouts, 10);
    }
}

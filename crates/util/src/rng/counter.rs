//! Counter-based (stateless) random number generation.
//!
//! The parallel dense engine must produce **identical** simulations no matter
//! how work is divided across threads. Stateful generators cannot do that:
//! the k-th draw depends on how many draws happened before it on the same
//! thread. A counter-based generator instead computes the random word for
//! logical coordinates `(seed, stream, counter)` directly, as a strong hash.
//!
//! We use a SplitMix64-style construction: each input word is folded in with
//! a distinct odd multiplier and the avalanche finalizer `mix64` (from
//! MurmurHash3/SplitMix64) is applied between foldings. This is exactly the
//! structure of SplitMix64 itself (counter × golden-gamma → finalizer), which
//! is known to pass statistical test batteries, extended to three inputs.

use rand::{RngCore, SeedableRng};

use super::splitmix::{fill_bytes_via_u64, GOLDEN_GAMMA};

/// The 64-bit avalanche finalizer used by SplitMix64 (variant of
/// MurmurHash3's finalizer with constants by David Stafford, mix 13).
#[inline(always)]
pub const fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Distinct odd constant for folding the stream id (Weyl constant of the
/// PCG-DXSM family).
const STREAM_MULT: u64 = 0xDA94_2042_E4DD_58B5;

/// Hash three 64-bit words into one uniformly mixed 64-bit word.
///
/// `hash3(seed, stream, counter)` is the random word at logical coordinates
/// `(stream, counter)` of the generator family keyed by `seed`. Changing any
/// single input bit flips each output bit with probability ≈ 1/2.
#[inline(always)]
pub const fn hash3(seed: u64, stream: u64, counter: u64) -> u64 {
    CounterKey::new(seed).stream(stream).word(counter)
}

/// The seed fold of [`hash3`], hoisted: `mix64(seed ^ GOLDEN_GAMMA)`.
///
/// The dense engine's hot loop derives one stream per ball per round from
/// the same seed; precomputing this fold once per chunk removes one `mix64`
/// from every per-ball stream setup. `CounterKey::new(s).stream(t).word(k)`
/// is bit-identical to `hash3(s, t, k)` by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterKey(u64);

impl CounterKey {
    /// Fold the seed.
    #[inline(always)]
    pub const fn new(seed: u64) -> Self {
        Self(mix64(seed ^ GOLDEN_GAMMA))
    }

    /// Fold a stream id on top of the seed key.
    #[inline(always)]
    pub const fn stream(self, stream: u64) -> CounterStream {
        CounterStream(mix64(self.0 ^ stream.wrapping_mul(STREAM_MULT)))
    }
}

/// A fully keyed stream: only the counter fold remains per word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterStream(u64);

impl CounterStream {
    /// Random word at `counter` (two `mix64` rounds; bit-compatible with
    /// [`hash3`]).
    #[inline(always)]
    pub const fn word(self, counter: u64) -> u64 {
        mix64(mix64(self.0 ^ counter.wrapping_mul(GOLDEN_GAMMA)))
    }

    /// Random word at `counter` with a single `mix64` round — exactly
    /// SplitMix64's `counter`-th output for the stream's key, so the same
    /// statistical pedigree at half the hashing cost. **Not** the same
    /// stream as [`CounterStream::word`]; engines that use it must treat it
    /// as a distinct stream family.
    #[inline(always)]
    pub const fn word_fast(self, counter: u64) -> u64 {
        mix64(self.0.wrapping_add(counter.wrapping_mul(GOLDEN_GAMMA)))
    }

    /// A sequential [`RngCore`] view over this stream starting at counter 0.
    #[inline(always)]
    pub const fn rng(self) -> CounterStreamRng {
        CounterStreamRng {
            stream: self,
            counter: 0,
        }
    }
}

/// Sequential generator over a pre-keyed [`CounterStream`] — the hot-loop
/// equivalent of [`CounterRng`] with the seed and stream folds already paid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterStreamRng {
    stream: CounterStream,
    counter: u64,
}

impl RngCore for CounterStreamRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let w = self.stream.word(self.counter);
        self.counter = self.counter.wrapping_add(1);
        w
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_via_u64(self, dest);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// A counter-based generator: `next_u64` returns `hash3(seed, stream, k)` for
/// k = 0, 1, 2, ….
///
/// Two `CounterRng`s with the same `(seed, stream)` produce the same
/// sequence; distinct streams are statistically independent. Cheap to
/// construct (no state expansion), so the parallel engine creates one per
/// logical work item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterRng {
    seed: u64,
    stream: u64,
    counter: u64,
}

impl CounterRng {
    /// Generator for the given key and stream, starting at counter 0.
    #[inline]
    pub fn new(seed: u64, stream: u64) -> Self {
        Self {
            seed,
            stream,
            counter: 0,
        }
    }

    /// Generator starting at an arbitrary counter offset.
    #[inline]
    pub fn at(seed: u64, stream: u64, counter: u64) -> Self {
        Self {
            seed,
            stream,
            counter,
        }
    }

    /// The current counter (number of words consumed since construction at
    /// counter 0).
    #[inline]
    pub fn counter(&self) -> u64 {
        self.counter
    }

    /// Random word at explicit coordinates without touching any state.
    #[inline]
    pub fn word(seed: u64, stream: u64, counter: u64) -> u64 {
        hash3(seed, stream, counter)
    }
}

impl RngCore for CounterRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let w = hash3(self.seed, self.stream, self.counter);
        self.counter = self.counter.wrapping_add(1);
        w
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_via_u64(self, dest);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for CounterRng {
    type Seed = [u8; 16];
    fn from_seed(seed: Self::Seed) -> Self {
        let k = u64::from_le_bytes(seed[0..8].try_into().expect("8 bytes"));
        let s = u64::from_le_bytes(seed[8..16].try_into().expect("8 bytes"));
        Self::new(k, s)
    }
    fn seed_from_u64(state: u64) -> Self {
        Self::new(state, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hoisted_key_matches_hash3() {
        let key = CounterKey::new(0xDEAD_BEEF);
        for stream in [0u64, 1, 77, u64::MAX] {
            let s = key.stream(stream);
            for counter in [0u64, 1, 1000, u64::MAX - 1] {
                assert_eq!(s.word(counter), hash3(0xDEAD_BEEF, stream, counter));
            }
        }
    }

    #[test]
    fn stream_rng_matches_counter_rng() {
        let mut a = CounterRng::new(42, 9);
        let mut b = CounterKey::new(42).stream(9).rng();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn stateless_equals_stateful() {
        let mut rng = CounterRng::new(7, 3);
        for k in 0..100 {
            assert_eq!(rng.next_u64(), CounterRng::word(7, 3, k));
        }
    }

    #[test]
    fn at_offset_resumes_mid_stream() {
        let mut a = CounterRng::new(11, 2);
        for _ in 0..50 {
            a.next_u64();
        }
        let mut b = CounterRng::at(11, 2, 50);
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_are_distinct() {
        let mut a = CounterRng::new(9, 0);
        let mut b = CounterRng::new(9, 1);
        let mut collisions = 0;
        for _ in 0..1000 {
            if a.next_u64() == b.next_u64() {
                collisions += 1;
            }
        }
        assert_eq!(collisions, 0);
    }

    #[test]
    fn avalanche_single_bit_counter() {
        // Flipping one counter bit should flip roughly half the output bits.
        let mut total = 0u32;
        let pairs = 512;
        for k in 0..pairs {
            let a = hash3(1, 2, k);
            let b = hash3(1, 2, k ^ 1);
            total += (a ^ b).count_ones();
        }
        let avg = total as f64 / pairs as f64;
        assert!((avg - 32.0).abs() < 2.0, "avalanche avg {avg}");
    }

    #[test]
    fn uniformity_chi_square() {
        // 256 buckets over the top byte; χ² with 255 dof should be ≈ 255.
        let mut counts = [0u32; 256];
        let n = 256_000u64;
        for k in 0..n {
            counts[(hash3(42, 7, k) >> 56) as usize] += 1;
        }
        let expect = n as f64 / 256.0;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expect;
                d * d / expect
            })
            .sum();
        // 255 dof: mean 255, sd ≈ 22.6; 5 sigma ≈ 368.
        assert!(chi2 < 370.0, "chi2 {chi2}");
    }

    #[test]
    fn mix64_is_bijective_spot_check() {
        // mix64 is invertible; spot-check no collisions in a small set.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)));
        }
    }
}

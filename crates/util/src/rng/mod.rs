//! Deterministic pseudo-random number generators.
//!
//! The paper's median rule consumes `2n` independent uniform indices per
//! round. The experiment harness additionally runs thousands of independent
//! trials, often in parallel. Reproducibility requirements drive the design:
//!
//! * every trial derives its generator from `(master_seed, trial_id)`;
//! * the parallel dense engine derives the two choices of ball `i` in round
//!   `t` from `(seed, t, i)` via the stateless [`CounterRng`], so results are
//!   **bit-identical regardless of the number of worker threads**;
//! * sequential code uses [`Xoshiro256pp`], seeded through [`SplitMix64`] as
//!   recommended by the xoshiro authors.
//!
//! All generators implement [`rand::RngCore`] + [`rand::SeedableRng`] so the
//! rest of the workspace can stay generic over `R: rand::Rng`.

mod counter;
mod splitmix;
mod xoshiro;

pub use counter::{hash3, mix64, CounterKey, CounterRng, CounterStream, CounterStreamRng};
pub use splitmix::SplitMix64;
pub use xoshiro::Xoshiro256pp;

use rand::RngCore;

/// One Lemire multiply-shift candidate for a uniform index in `[0, n)`:
/// returns `(index, low)` where `index = ⌊word·n / 2⁶⁴⌋` and `low` is the
/// bottom word of the 128-bit product.
///
/// The candidate is final unless `low < 2⁶⁴ mod n` (the rejection zone);
/// since `2⁶⁴ mod n < n`, the cheap conservative test `low < n` proves a
/// draw needs **no** rejection handling. [`gen_index`] is built on this
/// primitive, and the dense engine's batched kernel uses it directly so its
/// vectorizable resolve loop and the scalar rejection fallback share one
/// formula by construction.
#[inline(always)]
pub const fn lemire_candidate(word: u64, n: u64) -> (u64, u64) {
    let m = (word as u128) * (n as u128);
    ((m >> 64) as u64, m as u64)
}

/// Draw a uniform index in `[0, n)` using Lemire's multiply-shift method
/// with rejection (unbiased).
///
/// This is the hot primitive of the whole workspace: the dense engine calls
/// it twice per ball per round.
///
/// # Panics
/// Panics in debug builds if `n == 0`.
#[inline]
pub fn gen_index<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0, "gen_index: empty range");
    let (mut idx, mut low) = lemire_candidate(rng.next_u64(), n);
    if low < n {
        // Rejection zone: 2^64 mod n values at the bottom must be rejected
        // to keep the draw exactly uniform.
        let threshold = n.wrapping_neg() % n;
        while low < threshold {
            (idx, low) = lemire_candidate(rng.next_u64(), n);
        }
    }
    idx
}

/// Map one uniform 64-bit word to a uniform `f64` in `[0, 1)` with 53
/// random mantissa bits (the standard `(x >> 11) · 2⁻⁵³` construction).
///
/// [`gen_f64`] is this applied to the generator's next word; the batched
/// dense kernel applies it to pre-generated word buffers.
#[inline(always)]
pub const fn unit_f64_from_word(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Draw a uniform `f64` in `[0, 1)` with 53 random mantissa bits.
#[inline]
pub fn gen_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    unit_f64_from_word(rng.next_u64())
}

/// Draw a uniform `f64` in `(0, 1]` (never exactly zero — safe for `ln`).
#[inline]
pub fn gen_f64_open<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    ((rng.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Derive an independent child seed for a given trial / stream id.
///
/// The derivation is a strong 64-bit hash of `(master, stream)`; children
/// with different stream ids behave as statistically independent seeds.
#[inline]
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    hash3(master, 0x5eed_5eed_5eed_5eed, stream)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_index_in_range_and_covers() {
        let mut rng = Xoshiro256pp::seed(7);
        let n = 13u64;
        let mut seen = [0u32; 13];
        for _ in 0..20_000 {
            let v = gen_index(&mut rng, n);
            assert!(v < n);
            seen[v as usize] += 1;
        }
        for (i, &c) in seen.iter().enumerate() {
            assert!(c > 0, "value {i} never drawn");
            // Expected ~1538 per cell; allow wide slack.
            assert!((c as i64 - 1538).abs() < 500, "cell {i} count {c}");
        }
    }

    #[test]
    fn gen_index_n_one() {
        let mut rng = Xoshiro256pp::seed(1);
        for _ in 0..100 {
            assert_eq!(gen_index(&mut rng, 1), 0);
        }
    }

    #[test]
    fn gen_index_handles_huge_n() {
        let mut rng = Xoshiro256pp::seed(3);
        let n = u64::MAX - 5;
        for _ in 0..1000 {
            assert!(gen_index(&mut rng, n) < n);
        }
    }

    #[test]
    fn lemire_candidate_matches_gen_index_when_accepting() {
        // Whenever the candidate's low word proves no rejection can happen
        // (`low ≥ n`), gen_index must return exactly that candidate.
        let mut rng = Xoshiro256pp::seed(21);
        for &n in &[13u64, 1 << 20, (1 << 40) + 7] {
            for _ in 0..200 {
                let w = rng.next_u64();
                let (idx, low) = lemire_candidate(w, n);
                if low >= n {
                    struct One(u64, bool);
                    impl RngCore for One {
                        fn next_u32(&mut self) -> u32 {
                            (self.next_u64() >> 32) as u32
                        }
                        fn next_u64(&mut self) -> u64 {
                            assert!(!self.1, "gen_index drew a second word");
                            self.1 = true;
                            self.0
                        }
                        fn fill_bytes(&mut self, _: &mut [u8]) {
                            unimplemented!()
                        }
                        fn try_fill_bytes(&mut self, _: &mut [u8]) -> Result<(), rand::Error> {
                            unimplemented!()
                        }
                    }
                    assert_eq!(gen_index(&mut One(w, false), n), idx);
                }
            }
        }
    }

    #[test]
    fn unit_f64_from_word_matches_gen_f64() {
        let mut a = Xoshiro256pp::seed(33);
        let mut b = Xoshiro256pp::seed(33);
        for _ in 0..1000 {
            let w = a.next_u64();
            assert!(gen_f64(&mut b).to_bits() == unit_f64_from_word(w).to_bits());
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = Xoshiro256pp::seed(11);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let u = gen_f64(&mut rng);
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_f64_open_never_zero() {
        let mut rng = Xoshiro256pp::seed(5);
        for _ in 0..100_000 {
            let u = gen_f64_open(&mut rng);
            assert!(u > 0.0 && u <= 1.0);
        }
    }

    #[test]
    fn derive_seed_distinct_streams() {
        let a = derive_seed(42, 0);
        let b = derive_seed(42, 1);
        let c = derive_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Deterministic.
        assert_eq!(a, derive_seed(42, 0));
    }
}

//! SplitMix64 — Steele, Lea & Flood's fixed-increment generator.
//!
//! Used for (a) seeding [`super::Xoshiro256pp`] as its authors recommend and
//! (b) as the mixing finalizer behind [`super::CounterRng`].

use rand::{RngCore, SeedableRng};

/// The golden-ratio increment used by SplitMix64.
pub(crate) const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 pseudo-random generator.
///
/// Tiny state, very fast, and every seed gives a full-period 2^64 sequence.
/// Not suitable as the main simulation generator on its own (equidistribution
/// limits), but ideal for seeding and hashing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a 64-bit seed.
    #[inline]
    pub fn seed(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Produce the next 64-bit output.
    #[allow(clippy::should_implement_trait)] // domain convention: RNGs have `next`
    #[inline]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        super::mix64(self.state)
    }
}

impl RngCore for SplitMix64 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_via_u64(self, dest);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for SplitMix64 {
    type Seed = [u8; 8];
    fn from_seed(seed: Self::Seed) -> Self {
        Self::seed(u64::from_le_bytes(seed))
    }
    fn seed_from_u64(state: u64) -> Self {
        Self::seed(state)
    }
}

/// Fill a byte slice from consecutive `next_u64` outputs (little endian).
pub(crate) fn fill_bytes_via_u64<R: RngCore + ?Sized>(rng: &mut R, dest: &mut [u8]) {
    let mut chunks = dest.chunks_exact_mut(8);
    for chunk in &mut chunks {
        chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
    }
    let rem = chunks.into_remainder();
    if !rem.is_empty() {
        let bytes = rng.next_u64().to_le_bytes();
        rem.copy_from_slice(&bytes[..rem.len()]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference outputs for seed 0, from the public-domain reference
    /// implementation by Sebastiano Vigna.
    #[test]
    fn reference_vector_seed_zero() {
        let mut rng = SplitMix64::seed(0);
        let expected: [u64; 5] = [
            0xE220_A839_7B1D_CDAF,
            0x6E78_9E6A_A1B9_65F4,
            0x06C4_5D18_8009_454F,
            0xF88B_B8A8_724C_81EC,
            0x1B39_896A_51A8_749B,
        ];
        for e in expected {
            assert_eq!(rng.next(), e);
        }
    }

    #[test]
    fn reference_vector_seed_decimal() {
        // seed = 1234567, first three outputs (reference implementation).
        let mut rng = SplitMix64::seed(1234567);
        let a = rng.next();
        let b = rng.next();
        assert_ne!(a, b);
        // Determinism check against itself.
        let mut rng2 = SplitMix64::seed(1234567);
        assert_eq!(rng2.next(), a);
        assert_eq!(rng2.next(), b);
    }

    #[test]
    fn fill_bytes_matches_u64_stream() {
        let mut a = SplitMix64::seed(99);
        let mut b = SplitMix64::seed(99);
        let mut buf = [0u8; 20];
        a.fill_bytes(&mut buf);
        let w0 = b.next_u64().to_le_bytes();
        let w1 = b.next_u64().to_le_bytes();
        let w2 = b.next_u64().to_le_bytes();
        assert_eq!(&buf[0..8], &w0);
        assert_eq!(&buf[8..16], &w1);
        assert_eq!(&buf[16..20], &w2[..4]);
    }

    #[test]
    fn seedable_from_seed_roundtrip() {
        let r1 = SplitMix64::from_seed(42u64.to_le_bytes());
        let r2 = SplitMix64::seed_from_u64(42);
        assert_eq!(r1, r2);
    }
}

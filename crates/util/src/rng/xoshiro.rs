//! Xoshiro256++ — Blackman & Vigna's general-purpose 64-bit generator.
//!
//! This is the workhorse sequential generator for trials: 256 bits of state,
//! period 2^256 − 1, passes BigCrush. Seeded from a single `u64` through
//! SplitMix64, as the authors recommend.

use rand::{RngCore, SeedableRng};

use super::splitmix::{fill_bytes_via_u64, SplitMix64};

/// Xoshiro256++ pseudo-random generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

#[inline(always)]
const fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

impl Xoshiro256pp {
    /// Seed from a single `u64` by expanding through SplitMix64.
    pub fn seed(seed: u64) -> Self {
        let mut sm = SplitMix64::seed(seed);
        let s = [sm.next(), sm.next(), sm.next(), sm.next()];
        Self { s }
    }

    /// Construct directly from a 256-bit state.
    ///
    /// The all-zero state is invalid (fixed point); it is replaced by a
    /// SplitMix64-expanded fallback.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            return Self::seed(0);
        }
        Self { s }
    }

    /// Produce the next 64-bit output.
    #[allow(clippy::should_implement_trait)] // domain convention: RNGs have `next`
    #[inline]
    pub fn next(&mut self) -> u64 {
        let s = &mut self.s;
        let result = rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        result
    }

    /// The 2^128-step jump, for manually splitting one stream into far-apart
    /// substreams (equivalent to 2^128 `next` calls).
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180E_C6D3_3CFD_0ABA,
            0xD5A6_1266_F0C9_392C,
            0xA958_2618_E03F_C9AA,
            0x39AB_DC45_29B1_661C,
        ];
        let mut acc = [0u64; 4];
        for j in JUMP {
            for b in 0..64 {
                if j & (1u64 << b) != 0 {
                    acc[0] ^= self.s[0];
                    acc[1] ^= self.s[1];
                    acc[2] ^= self.s[2];
                    acc[3] ^= self.s[3];
                }
                self.next();
            }
        }
        self.s = acc;
    }
}

impl RngCore for Xoshiro256pp {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_via_u64(self, dest);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for Xoshiro256pp {
    type Seed = [u8; 32];
    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        Self::from_state(s)
    }
    fn seed_from_u64(state: u64) -> Self {
        Self::seed(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values for state [1, 2, 3, 4], matching the upstream C
    /// reference implementation (and the `rand_xoshiro` crate's test vector).
    #[test]
    fn reference_vector() {
        let mut rng = Xoshiro256pp::from_state([1, 2, 3, 4]);
        let expected: [u64; 9] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
            14011001112246962877,
            12406186145184390807,
            15849039046786891736,
        ];
        for e in expected {
            assert_eq!(rng.next(), e);
        }
    }

    #[test]
    fn zero_state_is_replaced() {
        let mut rng = Xoshiro256pp::from_state([0; 4]);
        // Must not be the degenerate all-zero generator.
        let a = rng.next();
        let b = rng.next();
        assert!(a != 0 || b != 0);
    }

    #[test]
    fn jump_decorrelates() {
        let mut a = Xoshiro256pp::seed(5);
        let mut b = a.clone();
        b.jump();
        // After a jump the streams should diverge immediately.
        let mut same = 0;
        for _ in 0..64 {
            if a.next() == b.next() {
                same += 1;
            }
        }
        assert_eq!(same, 0);
    }

    #[test]
    fn seed_expansion_is_deterministic() {
        let mut a = Xoshiro256pp::seed(1729);
        let mut b = Xoshiro256pp::seed(1729);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn moments_look_uniform() {
        let mut rng = Xoshiro256pp::seed(2024);
        let n = 200_000;
        let mut mean = 0.0f64;
        for _ in 0..n {
            mean += super::super::gen_f64(&mut rng);
        }
        mean /= n as f64;
        assert!((mean - 0.5).abs() < 5e-3, "mean {mean}");
    }
}

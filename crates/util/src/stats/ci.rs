//! Confidence intervals: normal-theory and bootstrap-percentile.

use rand::RngCore;

use super::quantile::quantile_sorted;
use super::summary::RunningStats;
use crate::rng::gen_index;

/// A two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate (sample mean).
    pub estimate: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Confidence level, e.g. 0.95.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }

    /// Whether the interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }
}

/// Inverse standard normal CDF (Acklam's rational approximation; absolute
/// error < 1.2e-9 over (0, 1)).
///
/// # Panics
/// Panics if `p ∉ (0, 1)`.
#[allow(clippy::excessive_precision)] // keep Acklam's published coefficients verbatim
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "normal_quantile: p = {p}");
    // Coefficients from Peter Acklam's algorithm.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (-p).ln_1p()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Normal-theory CI for the mean: `mean ± z · se`.
pub fn normal_ci(stats: &RunningStats, level: f64) -> ConfidenceInterval {
    assert!(level > 0.0 && level < 1.0, "normal_ci: level = {level}");
    let z = normal_quantile(0.5 + level / 2.0);
    let half = z * stats.std_err();
    ConfidenceInterval {
        estimate: stats.mean(),
        lo: stats.mean() - half,
        hi: stats.mean() + half,
        level,
    }
}

/// Bootstrap percentile CI for the mean (resamples with replacement).
///
/// # Panics
/// Panics if `xs` is empty or `level ∉ (0, 1)`.
pub fn bootstrap_ci<R: RngCore + ?Sized>(
    rng: &mut R,
    xs: &[f64],
    level: f64,
    resamples: usize,
) -> ConfidenceInterval {
    assert!(!xs.is_empty(), "bootstrap_ci: empty sample");
    assert!(level > 0.0 && level < 1.0);
    let n = xs.len();
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut sum = 0.0;
        for _ in 0..n {
            sum += xs[gen_index(rng, n as u64) as usize];
        }
        means.push(sum / n as f64);
    }
    means.sort_by(|a, b| a.partial_cmp(b).expect("NaN in bootstrap means"));
    let alpha = (1.0 - level) / 2.0;
    ConfidenceInterval {
        estimate: xs.iter().sum::<f64>() / n as f64,
        lo: quantile_sorted(&means, alpha),
        hi: quantile_sorted(&means, 1.0 - alpha),
        level,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;

    #[test]
    fn normal_quantile_known_values() {
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-4);
        assert!((normal_quantile(0.025) + 1.959964).abs() < 1e-4);
        assert!((normal_quantile(0.8413447) - 1.0).abs() < 1e-4);
        assert!((normal_quantile(0.999) - 3.090232).abs() < 1e-4);
    }

    #[test]
    fn normal_quantile_symmetry() {
        for &p in &[0.01, 0.1, 0.3, 0.45] {
            assert!(
                (normal_quantile(p) + normal_quantile(1.0 - p)).abs() < 1e-8,
                "p = {p}"
            );
        }
    }

    #[test]
    fn normal_ci_covers_truth() {
        // Sample from a known distribution; the 95% CI should contain the
        // true mean in this fixed-seed instance.
        let mut rng = Xoshiro256pp::seed(10);
        let mut stats = RunningStats::new();
        for _ in 0..10_000 {
            stats.push(crate::rng::gen_f64(&mut rng));
        }
        let ci = normal_ci(&stats, 0.95);
        assert!(ci.contains(0.5), "CI [{}, {}]", ci.lo, ci.hi);
        assert!(ci.half_width() < 0.01);
    }

    #[test]
    fn bootstrap_roughly_matches_normal() {
        let mut rng = Xoshiro256pp::seed(11);
        let xs: Vec<f64> = (0..2000).map(|_| crate::rng::gen_f64(&mut rng)).collect();
        let stats = RunningStats::from_slice(&xs);
        let nci = normal_ci(&stats, 0.95);
        let bci = bootstrap_ci(&mut rng, &xs, 0.95, 500);
        assert!((nci.lo - bci.lo).abs() < 0.01);
        assert!((nci.hi - bci.hi).abs() < 0.01);
    }

    #[test]
    #[should_panic]
    fn quantile_domain() {
        normal_quantile(0.0);
    }
}

//! Exact streaming counts over integer samples.
//!
//! Campaign sweeps fold millions of per-trial metrics (hitting times,
//! winners) into per-cell aggregates without materializing the raw samples.
//! Hitting times live in `0..max_rounds`, so a sparse value→count map is a
//! *lossless* quantile sketch with memory bounded by the number of distinct
//! values — and its summaries are bit-identical to the materialized
//! computation (see [`crate::stats::quantile_counts`]).

use std::collections::BTreeMap;

use super::quantile::{quantile_counts, Quantiles};

/// A sparse, exact counter of `u64` samples.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SparseCounts {
    counts: BTreeMap<u64, u64>,
    total: u64,
}

impl SparseCounts {
    /// Empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn push(&mut self, v: u64) {
        *self.counts.entry(v).or_insert(0) += 1;
        self.total += 1;
    }

    /// Record `w` copies of `v`.
    pub fn push_n(&mut self, v: u64, w: u64) {
        if w == 0 {
            return;
        }
        *self.counts.entry(v).or_insert(0) += w;
        self.total += w;
    }

    /// Merge another counter.
    pub fn merge(&mut self, other: &SparseCounts) {
        for (&v, &w) in &other.counts {
            self.push_n(v, w);
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether no sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of distinct values (the sketch's memory footprint).
    pub fn support(&self) -> usize {
        self.counts.len()
    }

    /// `(value, count)` pairs in ascending value order.
    pub fn pairs(&self) -> Vec<(u64, u64)> {
        self.counts.iter().map(|(&v, &w)| (v, w)).collect()
    }

    /// Exact mean (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return f64::NAN;
        }
        let sum: f64 = self.counts.iter().map(|(&v, &w)| v as f64 * w as f64).sum();
        sum / self.total as f64
    }

    /// Exact quantile (R type-7), bit-identical to sorting the expanded
    /// samples.
    ///
    /// # Panics
    /// Panics when empty or `q ∉ [0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_counts(&self.pairs(), q)
    }

    /// The full [`Quantiles`] summary (`None` when empty).
    pub fn quantiles(&self) -> Option<Quantiles> {
        (self.total > 0).then(|| Quantiles::from_counts(&self.pairs()))
    }

    /// Smallest recorded value.
    pub fn min(&self) -> Option<u64> {
        self.counts.keys().next().copied()
    }

    /// Largest recorded value.
    pub fn max(&self) -> Option<u64> {
        self.counts.keys().next_back().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_summaries() {
        let mut c = SparseCounts::new();
        for v in [3u64, 1, 4, 1, 5, 9, 2, 6] {
            c.push(v);
        }
        assert_eq!(c.count(), 8);
        assert_eq!(c.support(), 7);
        assert_eq!(c.min(), Some(1));
        assert_eq!(c.max(), Some(9));
        let xs: Vec<f64> = [3u64, 1, 4, 1, 5, 9, 2, 6]
            .iter()
            .map(|&v| v as f64)
            .collect();
        let q = c.quantiles().expect("nonempty");
        assert_eq!(q, Quantiles::from(&xs));
    }

    #[test]
    fn merge_equals_sequential() {
        let mut a = SparseCounts::new();
        let mut b = SparseCounts::new();
        let mut whole = SparseCounts::new();
        for i in 0..1000u64 {
            let v = (i * 37) % 101;
            if i % 2 == 0 {
                a.push(v);
            } else {
                b.push(v);
            }
            whole.push(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn empty_is_safe() {
        let c = SparseCounts::new();
        assert!(c.is_empty());
        assert!(c.mean().is_nan());
        assert_eq!(c.quantiles(), None);
        assert_eq!(c.min(), None);
    }

    #[test]
    fn push_n_weights() {
        let mut c = SparseCounts::new();
        c.push_n(5, 3);
        c.push_n(7, 0);
        assert_eq!(c.count(), 3);
        assert_eq!(c.support(), 1);
        assert_eq!(c.mean(), 5.0);
    }
}

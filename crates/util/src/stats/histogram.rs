//! Streaming histograms for round-count distributions.
//!
//! Experiment sweeps produce thousands of hitting times; storing raw samples
//! per cell gets expensive in big campaigns. [`StreamingHistogram`] keeps
//! fixed-width linear buckets plus exact min/max/mean and supports merging
//! (for parallel accumulation) and quantile estimation by interpolation
//! inside the hit bucket.

/// A fixed-range, fixed-width streaming histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingHistogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    /// Samples below `lo` / above `hi`.
    underflow: u64,
    overflow: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl StreamingHistogram {
    /// Histogram over `[lo, hi)` with `buckets` equal-width cells.
    ///
    /// # Panics
    /// Panics unless `lo < hi` and `buckets ≥ 1`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo < hi, "StreamingHistogram: empty range");
        assert!(buckets >= 1, "StreamingHistogram: no buckets");
        Self {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = (((x - self.lo) / width) as usize).min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Merge a histogram with identical geometry.
    ///
    /// # Panics
    /// Panics if the ranges or bucket counts differ.
    pub fn merge(&mut self, other: &StreamingHistogram) {
        assert_eq!(self.lo, other.lo, "merge: lo mismatch");
        assert_eq!(self.hi, other.hi, "merge: hi mismatch");
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "merge: bucket count mismatch"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of all observations (including under/overflow).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact minimum (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Exact maximum (`−inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Observations outside the range, `(underflow, overflow)`.
    pub fn outliers(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Approximate quantile by linear interpolation inside the hit bucket.
    /// Underflow mass maps to `lo`, overflow mass to `hi`. Exact for the
    /// min (q=0 → exact min) and capped at the exact max.
    ///
    /// # Panics
    /// Panics if the histogram is empty or `q ∉ [0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(self.count > 0, "quantile of empty histogram");
        assert!((0.0..=1.0).contains(&q));
        if q == 0.0 {
            return self.min;
        }
        if q == 1.0 {
            return self.max;
        }
        let target = q * self.count as f64;
        let mut acc = self.underflow as f64;
        if acc >= target {
            return self.lo.max(self.min);
        }
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = acc + c as f64;
            if next >= target {
                let frac = (target - acc) / c as f64;
                let est = self.lo + (i as f64 + frac) * width;
                return est.clamp(self.min, self.max);
            }
            acc = next;
        }
        self.max
    }

    /// A one-line sparkline-style rendering for logs.
    pub fn sparkline(&self) -> String {
        const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let peak = self.buckets.iter().copied().max().unwrap_or(0);
        if peak == 0 {
            return " ".repeat(self.buckets.len());
        }
        self.buckets
            .iter()
            .map(|&c| {
                if c == 0 {
                    ' '
                } else {
                    let lvl = (c * 7).div_ceil(peak) as usize;
                    LEVELS[lvl.min(7)]
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_counting() {
        let mut h = StreamingHistogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.push(i as f64 + 0.5);
        }
        assert_eq!(h.count(), 10);
        assert!(h.buckets().iter().all(|&c| c == 1));
        assert_eq!(h.outliers(), (0, 0));
        assert!((h.mean() - 5.0).abs() < 1e-12);
        assert_eq!(h.min(), 0.5);
        assert_eq!(h.max(), 9.5);
    }

    #[test]
    fn outliers_tracked() {
        let mut h = StreamingHistogram::new(0.0, 1.0, 4);
        h.push(-5.0);
        h.push(2.0);
        h.push(0.5);
        assert_eq!(h.outliers(), (1, 1));
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), -5.0);
        assert_eq!(h.max(), 2.0);
    }

    #[test]
    fn quantiles_approximate_uniform() {
        let mut h = StreamingHistogram::new(0.0, 100.0, 100);
        for i in 0..10_000 {
            h.push((i % 100) as f64 + 0.5);
        }
        assert!((h.quantile(0.5) - 50.0).abs() < 2.0);
        assert!((h.quantile(0.9) - 90.0).abs() < 2.0);
        assert_eq!(h.quantile(0.0), 0.5);
        assert_eq!(h.quantile(1.0), 99.5);
    }

    #[test]
    fn quantile_monotone() {
        let mut h = StreamingHistogram::new(0.0, 50.0, 25);
        for i in 0..1000 {
            h.push(((i * 7919) % 50) as f64);
        }
        let mut prev = f64::NEG_INFINITY;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v >= prev - 1e-9, "q={q}: {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn merge_equals_combined() {
        let mut a = StreamingHistogram::new(0.0, 10.0, 5);
        let mut b = StreamingHistogram::new(0.0, 10.0, 5);
        let mut whole = StreamingHistogram::new(0.0, 10.0, 5);
        for i in 0..100 {
            let x = (i % 12) as f64 - 1.0; // includes outliers
            if i % 2 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
            whole.push(x);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    #[should_panic]
    fn merge_mismatched_geometry_panics() {
        let mut a = StreamingHistogram::new(0.0, 10.0, 5);
        let b = StreamingHistogram::new(0.0, 10.0, 6);
        a.merge(&b);
    }

    #[test]
    fn sparkline_shape() {
        let mut h = StreamingHistogram::new(0.0, 3.0, 3);
        for _ in 0..8 {
            h.push(0.5);
        }
        h.push(1.5);
        let s = h.sparkline();
        assert_eq!(s.chars().count(), 3);
        assert_eq!(s.chars().next_back(), Some(' '), "empty bucket blank");
    }

    #[test]
    #[should_panic]
    fn empty_quantile_panics() {
        StreamingHistogram::new(0.0, 1.0, 2).quantile(0.5);
    }
}

//! Statistics for the experiment harness: running moments, quantiles,
//! confidence intervals, and least-squares scaling fits.

mod ci;
mod counts;
mod histogram;
mod quantile;
mod regression;
mod summary;

pub use ci::{bootstrap_ci, normal_ci, normal_quantile, ConfidenceInterval};
pub use counts::SparseCounts;
pub use histogram::StreamingHistogram;
pub use quantile::{median, quantile, quantile_counts, Quantiles};
pub use regression::{fit_line, ols, LineFit, OlsFit};
pub use summary::RunningStats;

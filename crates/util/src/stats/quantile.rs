//! Quantile estimation (R type-7 linear interpolation, the numpy default).

/// Quantile `q ∈ [0, 1]` of unsorted data, linear interpolation between
/// order statistics.
///
/// # Panics
/// Panics if `xs` is empty or `q ∉ [0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile: q = {q}");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    quantile_sorted(&sorted, q)
}

/// Quantile of pre-sorted data (no allocation).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = q * (n - 1) as f64;
    let lo = h.floor() as usize;
    let hi = (lo + 1).min(n - 1);
    let frac = h - lo as f64;
    sorted[lo] + frac * (sorted[hi] - sorted[lo])
}

/// Median shortcut.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// The value at 0-based order-statistic index `idx` of the expansion of
/// sorted `(value, weight)` pairs.
fn order_stat(pairs: &[(u64, u64)], idx: u64) -> u64 {
    let mut acc = 0u64;
    for &(v, w) in pairs {
        acc += w;
        if acc > idx {
            return v;
        }
    }
    unreachable!("order_stat index {idx} out of range");
}

/// Quantile of weighted integer samples, given as `(value, count)` pairs
/// sorted by value. **Bit-identical** to sorting the expanded multiset and
/// calling [`quantile_sorted`] — streaming campaign aggregates rely on this
/// to reproduce materialized sweeps exactly.
///
/// # Panics
/// Panics if the pairs are empty/unsorted, any count is zero, or `q ∉ [0, 1]`.
pub fn quantile_counts(pairs: &[(u64, u64)], q: f64) -> f64 {
    assert!(!pairs.is_empty(), "quantile_counts of empty pairs");
    assert!((0.0..=1.0).contains(&q), "quantile_counts: q = {q}");
    assert!(
        pairs.windows(2).all(|w| w[0].0 < w[1].0),
        "quantile_counts: pairs must be strictly sorted by value"
    );
    assert!(
        pairs.iter().all(|&(_, w)| w > 0),
        "quantile_counts: zero-count pair"
    );
    let n: u64 = pairs.iter().map(|&(_, w)| w).sum();
    if n == 1 {
        return pairs[0].0 as f64;
    }
    let h = q * (n - 1) as f64;
    let lo = h.floor() as u64;
    let hi = (lo + 1).min(n - 1);
    let frac = h - lo as f64;
    let vlo = order_stat(pairs, lo) as f64;
    let vhi = order_stat(pairs, hi) as f64;
    vlo + frac * (vhi - vlo)
}

/// The quantile summary reported by every experiment table: mean, p50, p90,
/// p95, p99, max.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantiles {
    /// Sample mean.
    pub mean: f64,
    /// 50th percentile.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Quantiles {
    /// Compute the summary from unsorted data.
    ///
    /// # Panics
    /// Panics if `xs` is empty.
    pub fn from(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "Quantiles of empty slice");
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in Quantiles input"));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Self {
            mean,
            p50: quantile_sorted(&sorted, 0.50),
            p90: quantile_sorted(&sorted, 0.90),
            p95: quantile_sorted(&sorted, 0.95),
            p99: quantile_sorted(&sorted, 0.99),
            max: *sorted.last().expect("nonempty"),
        }
    }

    /// Compute the summary from weighted integer samples (`(value, count)`
    /// pairs sorted by value), bit-identical to [`Quantiles::from`] on the
    /// expanded multiset: quantiles go through [`quantile_counts`] and the
    /// mean is an exact integer sum.
    ///
    /// # Panics
    /// Panics if the pairs are empty (see [`quantile_counts`]).
    pub fn from_counts(pairs: &[(u64, u64)]) -> Self {
        let n: u64 = pairs.iter().map(|&(_, w)| w).sum();
        assert!(n > 0, "Quantiles::from_counts of empty pairs");
        let sum: f64 = pairs.iter().map(|&(v, w)| v as f64 * w as f64).sum();
        Self {
            mean: sum / n as f64,
            p50: quantile_counts(pairs, 0.50),
            p90: quantile_counts(pairs, 0.90),
            p95: quantile_counts(pairs, 0.95),
            p99: quantile_counts(pairs, 0.99),
            max: pairs.last().expect("nonempty").0 as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_quantiles() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
        assert_eq!(quantile(&xs, 0.25), 2.0);
    }

    #[test]
    fn interpolation() {
        let xs = [0.0, 10.0];
        assert!((quantile(&xs, 0.5) - 5.0).abs() < 1e-12);
        assert!((quantile(&xs, 0.75) - 7.5).abs() < 1e-12);
    }

    #[test]
    fn unsorted_input() {
        let xs = [9.0, 1.0, 5.0, 3.0, 7.0];
        assert_eq!(median(&xs), 5.0);
    }

    #[test]
    fn even_length_median() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((median(&xs) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn singleton() {
        assert_eq!(quantile(&[7.0], 0.3), 7.0);
        let q = Quantiles::from(&[7.0]);
        assert_eq!(q.mean, 7.0);
        assert_eq!(q.max, 7.0);
    }

    #[test]
    fn summary_consistency() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let q = Quantiles::from(&xs);
        assert!((q.mean - 50.5).abs() < 1e-12);
        assert!(q.p50 <= q.p90 && q.p90 <= q.p95 && q.p95 <= q.p99 && q.p99 <= q.max);
        assert_eq!(q.max, 100.0);
    }

    #[test]
    #[should_panic]
    fn empty_panics() {
        quantile(&[], 0.5);
    }

    fn expand(pairs: &[(u64, u64)]) -> Vec<f64> {
        pairs
            .iter()
            .flat_map(|&(v, w)| std::iter::repeat_n(v as f64, w as usize))
            .collect()
    }

    #[test]
    fn counts_match_expanded_sort_exactly() {
        let cases: &[&[(u64, u64)]] = &[
            &[(7, 1)],
            &[(0, 3), (1, 2)],
            &[(3, 1), (10, 4), (11, 1), (40, 2)],
            &[(0, 100), (1, 1)],
            &[(5, 1), (6, 1), (7, 1), (8, 1), (9, 1)],
        ];
        for pairs in cases {
            let xs = expand(pairs);
            for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
                let a = quantile(&xs, q);
                let b = quantile_counts(pairs, q);
                assert!(a == b, "{pairs:?} q={q}: {a} != {b}");
            }
            let qa = Quantiles::from(&xs);
            let qb = Quantiles::from_counts(pairs);
            assert_eq!(qa, qb, "{pairs:?}");
        }
    }

    #[test]
    #[should_panic]
    fn counts_unsorted_panics() {
        quantile_counts(&[(3, 1), (1, 1)], 0.5);
    }
}

//! Quantile estimation (R type-7 linear interpolation, the numpy default).

/// Quantile `q ∈ [0, 1]` of unsorted data, linear interpolation between
/// order statistics.
///
/// # Panics
/// Panics if `xs` is empty or `q ∉ [0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile: q = {q}");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    quantile_sorted(&sorted, q)
}

/// Quantile of pre-sorted data (no allocation).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = q * (n - 1) as f64;
    let lo = h.floor() as usize;
    let hi = (lo + 1).min(n - 1);
    let frac = h - lo as f64;
    sorted[lo] + frac * (sorted[hi] - sorted[lo])
}

/// Median shortcut.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// The quantile summary reported by every experiment table: mean, p50, p90,
/// p95, p99, max.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantiles {
    /// Sample mean.
    pub mean: f64,
    /// 50th percentile.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Quantiles {
    /// Compute the summary from unsorted data.
    ///
    /// # Panics
    /// Panics if `xs` is empty.
    pub fn from(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "Quantiles of empty slice");
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in Quantiles input"));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Self {
            mean,
            p50: quantile_sorted(&sorted, 0.50),
            p90: quantile_sorted(&sorted, 0.90),
            p95: quantile_sorted(&sorted, 0.95),
            p99: quantile_sorted(&sorted, 0.99),
            max: *sorted.last().expect("nonempty"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_quantiles() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
        assert_eq!(quantile(&xs, 0.25), 2.0);
    }

    #[test]
    fn interpolation() {
        let xs = [0.0, 10.0];
        assert!((quantile(&xs, 0.5) - 5.0).abs() < 1e-12);
        assert!((quantile(&xs, 0.75) - 7.5).abs() < 1e-12);
    }

    #[test]
    fn unsorted_input() {
        let xs = [9.0, 1.0, 5.0, 3.0, 7.0];
        assert_eq!(median(&xs), 5.0);
    }

    #[test]
    fn even_length_median() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((median(&xs) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn singleton() {
        assert_eq!(quantile(&[7.0], 0.3), 7.0);
        let q = Quantiles::from(&[7.0]);
        assert_eq!(q.mean, 7.0);
        assert_eq!(q.max, 7.0);
    }

    #[test]
    fn summary_consistency() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let q = Quantiles::from(&xs);
        assert!((q.mean - 50.5).abs() < 1e-12);
        assert!(q.p50 <= q.p90 && q.p90 <= q.p95 && q.p95 <= q.p99 && q.p99 <= q.max);
        assert_eq!(q.max, 100.0);
    }

    #[test]
    #[should_panic]
    fn empty_panics() {
        quantile(&[], 0.5);
    }
}

//! Ordinary least squares for the scaling-law fits.
//!
//! The experiment harness regresses measured convergence times against the
//! paper's predictors: `log n`, `log m`, `log log n`, and products thereof
//! (e.g. Theorem 20's `log m · log log n + log n`). Small design matrices
//! only (a handful of predictors), so plain normal equations with Gaussian
//! elimination are exact enough.

/// A simple-line fit `y = intercept + slope·x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Intercept `a`.
    pub intercept: f64,
    /// Slope `b`.
    pub slope: f64,
    /// Coefficient of determination.
    pub r2: f64,
    /// Standard error of the slope.
    pub slope_se: f64,
}

/// Fit `y = a + b·x` by least squares.
///
/// # Panics
/// Panics if fewer than 2 points or if all `x` are identical.
pub fn fit_line(xs: &[f64], ys: &[f64]) -> LineFit {
    assert_eq!(xs.len(), ys.len(), "fit_line: length mismatch");
    assert!(xs.len() >= 2, "fit_line: need at least 2 points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let syy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    assert!(sxx > 0.0, "fit_line: degenerate x values");
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| {
            let e = y - (intercept + slope * x);
            e * e
        })
        .sum();
    let r2 = if syy > 0.0 { 1.0 - ss_res / syy } else { 1.0 };
    let dof = (xs.len() as f64 - 2.0).max(1.0);
    let slope_se = (ss_res / dof / sxx).sqrt();
    LineFit {
        intercept,
        slope,
        r2,
        slope_se,
    }
}

/// A multi-predictor OLS fit `y = β₀ + β₁x₁ + … + β_k x_k`.
#[derive(Debug, Clone, PartialEq)]
pub struct OlsFit {
    /// Coefficients, `beta[0]` being the intercept.
    pub beta: Vec<f64>,
    /// Coefficient of determination.
    pub r2: f64,
    /// Residual sum of squares.
    pub ss_res: f64,
}

impl OlsFit {
    /// Predict `y` for a row of predictor values (without intercept column).
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len() + 1, self.beta.len(), "predict: wrong arity");
        self.beta[0]
            + self.beta[1..]
                .iter()
                .zip(x)
                .map(|(b, v)| b * v)
                .sum::<f64>()
    }
}

/// Multi-predictor OLS via normal equations. `rows[i]` holds the predictor
/// values for observation `i` (the intercept column is added internally).
///
/// # Panics
/// Panics on shape mismatch, fewer observations than parameters, or a
/// singular design matrix.
pub fn ols(rows: &[Vec<f64>], ys: &[f64]) -> OlsFit {
    assert_eq!(rows.len(), ys.len(), "ols: length mismatch");
    assert!(!rows.is_empty(), "ols: no data");
    let k = rows[0].len() + 1; // +1 intercept
    assert!(rows.len() >= k, "ols: underdetermined system");
    for r in rows {
        assert_eq!(r.len() + 1, k, "ols: ragged rows");
    }

    // Build X'X (k×k) and X'y (k).
    let mut xtx = vec![vec![0.0f64; k]; k];
    let mut xty = vec![0.0f64; k];
    for (row, &y) in rows.iter().zip(ys) {
        let mut xi = Vec::with_capacity(k);
        xi.push(1.0);
        xi.extend_from_slice(row);
        for a in 0..k {
            xty[a] += xi[a] * y;
            for b in 0..k {
                xtx[a][b] += xi[a] * xi[b];
            }
        }
    }

    let beta = solve_linear(&mut xtx, &mut xty);

    let my = ys.iter().sum::<f64>() / ys.len() as f64;
    let syy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    let ss_res: f64 = rows
        .iter()
        .zip(ys)
        .map(|(row, &y)| {
            let pred = beta[0] + beta[1..].iter().zip(row).map(|(b, v)| b * v).sum::<f64>();
            (y - pred) * (y - pred)
        })
        .sum();
    let r2 = if syy > 0.0 { 1.0 - ss_res / syy } else { 1.0 };
    OlsFit { beta, r2, ss_res }
}

/// Solve `A·x = b` in place by Gaussian elimination with partial pivoting.
#[allow(clippy::needless_range_loop)] // index arithmetic is clearer for elimination
fn solve_linear(a: &mut [Vec<f64>], b: &mut [f64]) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let piv = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("NaN in linear solve")
            })
            .expect("nonempty range");
        assert!(a[piv][col].abs() > 1e-12, "singular design matrix");
        a.swap(col, piv);
        b.swap(col, piv);
        // Eliminate below.
        for row in (col + 1)..n {
            let f = a[row][col] / a[col][col];
            if f == 0.0 {
                continue;
            }
            for c in col..n {
                a[row][c] -= f * a[col][c];
            }
            b[row] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0f64; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for c in (row + 1)..n {
            acc -= a[row][c] * x[c];
        }
        x[row] = acc / a[row][row];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x).collect();
        let fit = fit_line(&xs, &ys);
        assert!((fit.intercept - 3.0).abs() < 1e-10);
        assert!((fit.slope - 2.0).abs() < 1e-10);
        assert!((fit.r2 - 1.0).abs() < 1e-10);
        assert!(fit.slope_se < 1e-9);
    }

    #[test]
    fn noisy_line_recovers_slope() {
        // Deterministic "noise" with zero mean.
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 1.0 + 0.5 * x + if i % 2 == 0 { 0.3 } else { -0.3 })
            .collect();
        let fit = fit_line(&xs, &ys);
        assert!((fit.slope - 0.5).abs() < 0.01, "slope {}", fit.slope);
        assert!(fit.r2 > 0.99);
    }

    #[test]
    fn ols_matches_line_fit() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sqrt()).collect();
        let ys: Vec<f64> = xs.iter().map(|x| -1.0 + 4.0 * x).collect();
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        let fit = ols(&rows, &ys);
        assert!((fit.beta[0] + 1.0).abs() < 1e-8);
        assert!((fit.beta[1] - 4.0).abs() < 1e-8);
        assert!((fit.r2 - 1.0).abs() < 1e-10);
    }

    #[test]
    fn ols_two_predictors() {
        // y = 2 + 3·x1 − 5·x2 on a grid.
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                let x1 = i as f64;
                let x2 = (j as f64) * 0.5;
                rows.push(vec![x1, x2]);
                ys.push(2.0 + 3.0 * x1 - 5.0 * x2);
            }
        }
        let fit = ols(&rows, &ys);
        assert!((fit.beta[0] - 2.0).abs() < 1e-8);
        assert!((fit.beta[1] - 3.0).abs() < 1e-8);
        assert!((fit.beta[2] + 5.0).abs() < 1e-8);
        assert!((fit.predict(&[2.0, 4.0]) - (2.0 + 6.0 - 20.0)).abs() < 1e-8);
    }

    #[test]
    #[should_panic]
    fn degenerate_x_panics() {
        fit_line(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic]
    fn underdetermined_panics() {
        ols(&[vec![1.0, 2.0]], &[3.0]);
    }
}

//! Welford's online mean/variance with parallel merge.

/// Numerically stable running moments (Welford), mergeable across threads.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Build from a slice of observations.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Add one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let d = x - self.mean;
        self.mean += d / self.count as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator (Chan's parallel combine).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 for fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Minimum observation (+inf if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (−inf if empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let s = RunningStats::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4; sample variance = 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64).collect();
        let whole = RunningStats::from_slice(&xs);
        let mut left = RunningStats::from_slice(&xs[..400]);
        let right = RunningStats::from_slice(&xs[400..]);
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = RunningStats::new();
        let b = RunningStats::from_slice(&[1.0, 2.0, 3.0]);
        a.merge(&b);
        assert!((a.mean() - 2.0).abs() < 1e-12);
        let mut c = RunningStats::from_slice(&[1.0, 2.0, 3.0]);
        c.merge(&RunningStats::new());
        assert_eq!(c.count(), 3);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_err(), 0.0);
    }

    #[test]
    fn single_observation() {
        let s = RunningStats::from_slice(&[42.0]);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }
}

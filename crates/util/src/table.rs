//! Plain-text, markdown, and CSV table rendering for experiment output.
//!
//! Every bench target prints its reproduction of a paper table/figure
//! through this module so the output format is uniform and easy to diff
//! against `EXPERIMENTS.md`.

use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a data row (must match the header arity).
    ///
    /// # Panics
    /// Panics on arity mismatch — a malformed experiment table is a bug.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "table '{}': row arity {} != header arity {}",
            self.title,
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Append a footnote line printed under the table.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column-aligned plain text rendering.
    pub fn to_text(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(out, " {:<width$} ", h, width = widths[i]);
            if i + 1 < cols {
                out.push('|');
            }
        }
        out.push('\n');
        out.push_str(&line);
        out.push('\n');
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(out, " {:>width$} ", cell, width = widths[i]);
                if i + 1 < cols {
                    out.push('|');
                }
            }
            out.push('\n');
        }
        for note in &self.notes {
            let _ = writeln!(out, "  * {note}");
        }
        out
    }

    /// GitHub-flavoured markdown rendering.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        for note in &self.notes {
            let _ = writeln!(out, "\n*{note}*");
        }
        out
    }

    /// CSV rendering (RFC-4180 quoting for cells containing commas/quotes).
    pub fn to_csv(&self) -> String {
        fn quote(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Format with fixed decimals.
pub fn fmt_f64(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

/// Format to a sensible number of significant figures for table cells.
pub fn fmt_sig(x: f64) -> String {
    if x == 0.0 {
        return "0".to_string();
    }
    let ax = x.abs();
    if ax >= 1000.0 {
        format!("{x:.0}")
    } else if ax >= 10.0 {
        format!("{x:.1}")
    } else if ax >= 0.01 {
        format!("{x:.3}")
    } else {
        format!("{x:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["n", "rounds", "note"]);
        t.push_row(vec!["1024".into(), "13.5".into(), "ok".into()]);
        t.push_row(vec!["2048".into(), "14.9".into(), "ok".into()]);
        t.push_note("footnote");
        t
    }

    #[test]
    fn text_contains_everything() {
        let s = sample().to_text();
        assert!(s.contains("demo"));
        assert!(s.contains("rounds"));
        assert!(s.contains("14.9"));
        assert!(s.contains("footnote"));
    }

    #[test]
    fn markdown_shape() {
        let s = sample().to_markdown();
        assert!(s.starts_with("### demo"));
        assert!(s.contains("| n | rounds | note |"));
        assert!(s.contains("|---|---|---|"));
    }

    #[test]
    fn csv_quoting() {
        let mut t = Table::new("q", &["a"]);
        t.push_row(vec!["x,y".into()]);
        t.push_row(vec!["he said \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut t = Table::new("bad", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_sig(0.0), "0");
        assert_eq!(fmt_sig(12345.6), "12346");
        assert_eq!(fmt_sig(12.34), "12.3");
        assert_eq!(fmt_sig(0.1234), "0.123");
        assert!(fmt_sig(0.0001234).contains('e'));
    }
}

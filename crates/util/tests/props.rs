//! Property-based tests for the substrate crate.

use proptest::prelude::*;
use rand::RngCore;
use stabcon_util::dist::{
    binomial_cdf, binomial_pmf, ln_binomial_coeff, ln_factorial, multinomial, AliasTable, Binomial,
};
use stabcon_util::rng::{derive_seed, gen_f64, gen_index, CounterRng, SplitMix64, Xoshiro256pp};
use stabcon_util::stats::{quantile, RunningStats};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // --- RNG ---------------------------------------------------------------

    #[test]
    fn gen_index_always_in_range(seed in any::<u64>(), n in 1u64..u64::MAX) {
        let mut rng = Xoshiro256pp::seed(seed);
        for _ in 0..32 {
            prop_assert!(gen_index(&mut rng, n) < n);
        }
    }

    #[test]
    fn gen_f64_in_unit_interval(seed in any::<u64>()) {
        let mut rng = SplitMix64::seed(seed);
        for _ in 0..64 {
            let u = gen_f64(&mut rng);
            prop_assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn counter_rng_is_stateless_hash(seed in any::<u64>(), stream in any::<u64>(), k in 0u64..1000) {
        let mut rng = CounterRng::at(seed, stream, k);
        let direct = CounterRng::word(seed, stream, k);
        prop_assert_eq!(rng.next_u64(), direct);
    }

    #[test]
    fn derive_seed_is_injective_on_streams(master in any::<u64>(), a in 0u64..10_000, b in 0u64..10_000) {
        if a != b {
            prop_assert_ne!(derive_seed(master, a), derive_seed(master, b));
        }
    }

    // --- distributions -------------------------------------------------------

    #[test]
    fn binomial_sample_in_support(seed in any::<u64>(), n in 0u64..100_000, p in 0.0f64..=1.0) {
        let mut rng = Xoshiro256pp::seed(seed);
        let x = Binomial::new(n, p).sample(&mut rng);
        prop_assert!(x <= n);
    }

    #[test]
    fn binomial_pmf_is_probability(n in 0u64..200, p in 0.0f64..=1.0, k in 0u64..220) {
        let q = binomial_pmf(n, p, k);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&q));
    }

    #[test]
    fn binomial_cdf_monotone(n in 1u64..100, p in 0.01f64..0.99, k in 0u64..100) {
        let k = k.min(n.saturating_sub(1));
        prop_assert!(binomial_cdf(n, p, k) <= binomial_cdf(n, p, k + 1) + 1e-12);
    }

    #[test]
    fn ln_factorial_is_superadditive(a in 0u64..5000, b in 0u64..5000) {
        // ln((a+b)!) ≥ ln(a!) + ln(b!)  (C(a+b, a) ≥ 1)
        prop_assert!(ln_factorial(a + b) + 1e-9 >= ln_factorial(a) + ln_factorial(b));
    }

    #[test]
    fn ln_binomial_symmetry(n in 0u64..2000, k in 0u64..2000) {
        if k <= n {
            let a = ln_binomial_coeff(n, k);
            let b = ln_binomial_coeff(n, n - k);
            prop_assert!((a - b).abs() < 1e-7, "C({},{}) asymmetric: {} vs {}", n, k, a, b);
        }
    }

    #[test]
    fn multinomial_conserves_total(seed in any::<u64>(), n in 0u64..100_000,
                                   w in prop::collection::vec(0.0f64..1.0, 1..10)) {
        let total: f64 = w.iter().sum();
        prop_assume!(total > 1e-9);
        let probs: Vec<f64> = w.iter().map(|x| x / total).collect();
        let mut rng = Xoshiro256pp::seed(seed);
        let out = multinomial(&mut rng, n, &probs);
        prop_assert_eq!(out.iter().sum::<u64>(), n);
    }

    #[test]
    fn alias_table_samples_support_only(seed in any::<u64>(),
                                        w in prop::collection::vec(0.0f64..10.0, 1..20)) {
        prop_assume!(w.iter().sum::<f64>() > 1e-9);
        let table = AliasTable::new(&w);
        let mut rng = Xoshiro256pp::seed(seed);
        for _ in 0..64 {
            let idx = table.sample(&mut rng);
            prop_assert!(idx < w.len());
            prop_assert!(w[idx] > 0.0, "sampled zero-weight category {}", idx);
        }
    }

    // --- statistics ----------------------------------------------------------

    #[test]
    fn running_stats_merge_is_order_free(xs in prop::collection::vec(-1e6f64..1e6, 1..100),
                                         cut in 0usize..100) {
        let cut = cut.min(xs.len());
        let whole = RunningStats::from_slice(&xs);
        let mut ab = RunningStats::from_slice(&xs[..cut]);
        ab.merge(&RunningStats::from_slice(&xs[cut..]));
        let mut ba = RunningStats::from_slice(&xs[cut..]);
        ba.merge(&RunningStats::from_slice(&xs[..cut]));
        prop_assert_eq!(ab.count(), whole.count());
        let scale = whole.mean().abs().max(1.0);
        prop_assert!((ab.mean() - whole.mean()).abs() < 1e-6 * scale);
        prop_assert!((ba.mean() - whole.mean()).abs() < 1e-6 * scale);
        let vscale = whole.variance().abs().max(1.0);
        prop_assert!((ab.variance() - whole.variance()).abs() < 1e-5 * vscale);
    }

    #[test]
    fn quantile_is_monotone_in_q(xs in prop::collection::vec(-1e5f64..1e5, 1..100),
                                 q1 in 0.0f64..=1.0, q2 in 0.0f64..=1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(quantile(&xs, lo) <= quantile(&xs, hi) + 1e-9);
    }

    #[test]
    fn quantile_bounded_by_extremes(xs in prop::collection::vec(-1e5f64..1e5, 1..100),
                                    q in 0.0f64..=1.0) {
        let v = quantile(&xs, q);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
    }
}

/// Statistical (fixed-seed) check: BINV and BTRS agree where their domains
/// meet — sample means from both regimes straddle the true mean.
#[test]
fn binomial_regime_boundary_consistency() {
    // np just below and above 10 with the same n: different code paths.
    let n = 1000u64;
    let mut rng = Xoshiro256pp::seed(777);
    for &p in &[0.009f64, 0.011] {
        let d = Binomial::new(n, p);
        let trials = 30_000;
        let mut sum = 0u64;
        for _ in 0..trials {
            sum += d.sample(&mut rng);
        }
        let mean = sum as f64 / trials as f64;
        let se = (d.variance() / trials as f64).sqrt();
        assert!(
            (mean - d.mean()).abs() < 6.0 * se,
            "p = {p}: mean {mean} vs {}",
            d.mean()
        );
    }
}

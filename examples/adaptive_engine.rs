//! The adaptive engine in action: a population of one million processes,
//! run once on the plain dense engine and once with the dense→histogram
//! handoff, timing both and checking the answers agree.
//!
//! ```bash
//! cargo run --release --example adaptive_engine
//! ```

use std::time::Instant;

use stabcon::core::engine::EngineSpec;
use stabcon::prelude::*;

fn main() {
    let n = 1_000_000usize;
    let spec = SimSpec::new(n)
        .init(InitialCondition::UniformRandom { m: 64 })
        .max_rounds(100_000);

    println!("n = {n}, 64 initial opinions, median rule\n");
    let mut timings = Vec::new();
    for engine in [EngineSpec::DenseSeq, EngineSpec::adaptive()] {
        let spec = spec.clone().engine(engine);
        let start = Instant::now();
        let result = spec.run_seeded(7);
        let secs = start.elapsed().as_secs_f64();
        timings.push(secs);
        println!(
            "{:<24} consensus at round {:>3}, winner {:>2}, valid: {}, {:.3}s",
            spec_label(&engine),
            result.consensus_round.expect("median rule converges"),
            result.winner,
            result.winner_valid,
            secs,
        );
        assert_eq!(result.final_support, 1);
        assert_eq!(result.final_disagreement, 0);
    }
    println!(
        "\nadaptive end-to-end speedup: {:.1}×",
        timings[0] / timings[1].max(1e-12)
    );
}

fn spec_label(engine: &EngineSpec) -> String {
    engine.label()
}

//! The §1.1 story, live: why the minimum rule cannot give stabilizing
//! consensus while the median rule can.
//!
//! A T-bounded adversary first erases every holder of the smallest value.
//! The minimum rule happily commits to the surviving value… until the
//! adversary revives a single copy of the smaller one, and the whole cascade
//! restarts. The median rule never cares: one ball cannot move a median.
//!
//! ```sh
//! cargo run --release --example adversarial_duel
//! ```

use stabcon::analysis::baselines::min_rule_table;
use stabcon::prelude::*;

fn main() {
    let n = 2048;
    let threads = stabcon::par::default_threads();

    // Narrative single run first: watch the min rule get burned.
    let t = ((n as f64).sqrt() / 2.0) as u64;
    let revive_at = 60;
    for protocol in [ProtocolSpec::Min, ProtocolSpec::Median] {
        let spec = SimSpec::new(n)
            .init(InitialCondition::TwoBins {
                left: t as usize, // at most T processes hold the minority value
            })
            .protocol(protocol)
            .adversary(AdversarySpec::Reviver { revive_at }, t)
            .max_rounds(revive_at + 200)
            .full_horizon(true)
            .record_trajectory(true);
        let result = spec.run_seeded(7);
        let traj = result.trajectory.as_deref().unwrap_or(&[]);
        let last_unsettled = traj
            .iter()
            .filter(|o| o.support > 1)
            .map(|o| o.round)
            .max()
            .unwrap_or(0);
        println!(
            "{:>7} rule: winner {:>4}, last round with disagreement = {:>4}  (revival was at {revive_at})",
            protocol.label(),
            result.winner,
            last_unsettled,
        );
    }

    println!();
    // Sweep revive delays: the min rule's settlement time tracks d.
    let table = min_rule_table(n, &[50, 200, 800], 10, 0xD0E1, threads);
    print!("{}", table.to_text());
}

//! A protocol × adversary campaign through the `stabcon-exp` subsystem:
//! declarative grid, sharded execution with streamed per-cell aggregates,
//! checkpoint/resume against a JSONL store, and the rendered report.
//!
//! ```sh
//! cargo run --release --example campaign_sweep
//! ```
//!
//! The same grid is available from the CLI as
//! `stabcon campaign run --preset duel --out duel.jsonl`.

use stabcon::core::adversary::AdversarySpec;
use stabcon::core::protocol::ProtocolSpec;
use stabcon::exp::{report, run_campaign, store, BudgetSpec, CampaignSpec, InitSpec, RunConfig};

fn main() {
    // Cartesian grid: 2 populations × 3 protocols × 3 adversaries. Every
    // cell derives its seed from the master seed by cell id, and every
    // trial from the cell seed by trial index — nothing depends on thread
    // count, chunking, or scheduling.
    let spec = CampaignSpec {
        name: "example-duel".into(),
        seed: 0xD0E1,
        trials: 16,
        ns: vec![512, 1024],
        inits: vec![InitSpec::UniformRandom(8)],
        protocols: vec![
            ProtocolSpec::Median,
            ProtocolSpec::Majority,
            ProtocolSpec::Voter,
        ],
        adversaries: vec![
            (AdversarySpec::None, BudgetSpec::Zero),
            (AdversarySpec::Balancer, BudgetSpec::SqrtOver4),
            (AdversarySpec::Random, BudgetSpec::SqrtOver4),
        ],
        ..CampaignSpec::default()
    };
    let path = std::env::temp_dir().join("stabcon-campaign-sweep.jsonl");
    std::fs::remove_file(&path).ok();

    // Simulate an interruption: stop after 5 cells.
    let partial = run_campaign(
        &spec,
        &path,
        &RunConfig {
            max_cells: Some(5),
            ..RunConfig::default()
        },
    )
    .expect("campaign run");
    println!(
        "first pass:  {} of {} cells checkpointed to {}",
        partial.cells_run,
        partial.cells_total,
        path.display()
    );

    // Resume: completed cells are skipped; the finished store is
    // byte-identical to an uninterrupted run at any thread count.
    let resumed = run_campaign(
        &spec,
        &path,
        &RunConfig {
            resume: true,
            ..RunConfig::default()
        },
    )
    .expect("campaign resume");
    println!(
        "resume pass: {} run, {} skipped\n",
        resumed.cells_run, resumed.cells_skipped
    );

    let loaded = store::load(&path).expect("loading store");
    print!("{}", report::report_table(&loaded).to_text());
    println!();
    println!("The voter rule's hit rate collapses under the balancer while the");
    println!("median rule stays near 100% — the power of two choices (§1.2).");
    println!(
        "Store: {} — one JSON line per cell; render anytime with\n  \
         stabcon campaign report --out {}",
        path.display(),
        path.display()
    );
}

//! The histogram engine at planetary scale: a trillion-process consensus.
//!
//! The dense engine stores 4 bytes per process; at n = 2^40 that is 4 TiB.
//! The histogram engine instead advances *all* processes of a bin with one
//! multinomial draw from the median rule's closed-form destination law —
//! `O(m²)` per round no matter how large n is.
//!
//! ```sh
//! cargo run --release --example huge_population
//! ```

use stabcon::core::adversary::HistAdversarySpec;
use stabcon::core::histogram::Histogram;
use stabcon::core::runner::HistSpec;
use stabcon::util::stats::StreamingHistogram;

fn main() {
    let n: u64 = 1 << 40; // ~1.1e12 processes
    println!("population: 2^40 = {n} processes, 9 initial opinions\n");

    // Nine opinions with skewed popularity.
    let bins: Vec<(u32, u64)> = (0..9u32)
        .map(|v| (v * 10, n / 9 + (v as u64) * 1_000_000))
        .collect();
    let init = Histogram::new(&bins);

    // Budget: T = √n/4 ≈ 262144 corrupted processes per round.
    let t = ((n as f64).sqrt() / 4.0) as u64;
    let spec = HistSpec::new(init)
        .adversary(HistAdversarySpec::Balancer, t)
        .max_rounds(10_000);

    let trials = 25;
    let mut rounds_hist = StreamingHistogram::new(0.0, 200.0, 40);
    let mut winners = std::collections::BTreeMap::<u32, u32>::new();
    let start = std::time::Instant::now();
    for s in 0..trials {
        let r = spec.run_seeded(1000 + s);
        let hit = r
            .almost_stable_round
            .or(r.consensus_round)
            .expect("must stabilize below threshold");
        rounds_hist.push(hit as f64);
        *winners.entry(r.winner).or_insert(0) += 1;
    }
    let elapsed = start.elapsed();

    println!("adversary            : balancing, T = {t} per round");
    println!("trials               : {trials}");
    println!(
        "rounds to stability  : mean {:.1}, p95 {:.1}, max {:.0}",
        rounds_hist.mean(),
        rounds_hist.quantile(0.95),
        rounds_hist.max()
    );
    println!("distribution         : {}", rounds_hist.sparkline());
    println!("winning opinions     : {winners:?}");
    println!(
        "wall clock           : {:.2?} total ({:.1?} per trillion-process trial)",
        elapsed,
        elapsed / trials as u32
    );
    println!("\n(The same run on the dense engine would need ~4 TiB of RAM.)");
}

//! The average-case parity effect (Theorem 21): uniform random initial
//! values over `m` bins converge in `O(log m + log log n)` rounds when `m`
//! is **odd** but need `Θ(log n)` when `m` is **even** — because with an odd
//! number of bins the middle bin starts with an Ω(n/m) head start, while an
//! even split leaves the median sitting on a knife edge.
//!
//! ```sh
//! cargo run --release --example parity_effect
//! ```

use stabcon::analysis::figure1::average_case_table;

fn main() {
    let n = 1 << 14;
    let ms: Vec<u32> = (2..=16).collect();
    let threads = stabcon::par::default_threads();
    let table = average_case_table(n, &ms, 40, 0x9A17, threads);
    print!("{}", table.to_text());
    println!();
    println!("Reading guide: odd-m rows should be visibly faster than their");
    println!("even neighbours, and grow only with log m — the even rows track");
    println!("the two-bin Θ(log n) time instead (Theorem 21 / Corollary 22).");
}

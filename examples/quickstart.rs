//! Quickstart: reach consensus with the median rule.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use stabcon::prelude::*;

fn main() {
    // 4096 processes, two conflicting opinions split exactly 50/50 — the
    // worst case for two values.
    let n = 4096;
    let spec = SimSpec::new(n)
        .init(InitialCondition::TwoBins { left: n / 2 })
        .record_trajectory(true);

    let result = spec.run_seeded(42);

    println!("population            : {n}");
    println!(
        "consensus reached     : round {}",
        result
            .consensus_round
            .map(|r| r.to_string())
            .unwrap_or_else(|| "never".into())
    );
    println!("winning value         : {}", result.winner);
    println!("winner is an initial value: {}", result.winner_valid);

    println!("\nper-round support / larger-bin share:");
    for obs in result.trajectory.as_deref().unwrap_or(&[]) {
        println!(
            "  round {:>3}: support {:>2}, plurality {:>5.1}%  |Δ| = {:>6.1}",
            obs.round,
            obs.support,
            obs.plurality_count as f64 / n as f64 * 100.0,
            obs.imbalance,
        );
        if obs.support == 1 {
            break;
        }
    }

    // The same dynamics under a √n-bounded adversary that keeps both camps
    // balanced: the paper's Theorem 2 regime.
    let t = ((n as f64).sqrt() / 2.0) as u64;
    let adversarial = SimSpec::new(n)
        .init(InitialCondition::TwoBins { left: n / 2 })
        .adversary(AdversarySpec::Balancer, t);
    let result = adversarial.run_seeded(42);
    println!(
        "\nwith a balancing adversary (T = {t}): almost-stable at round {}",
        result
            .almost_stable_round
            .map(|r| r.to_string())
            .unwrap_or_else(|| "never".into())
    );
}

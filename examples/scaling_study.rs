//! Reproduce Figure 1 rows 1 and 2 at a configurable scale.
//!
//! The tables execute through the `stabcon-exp` campaign scheduler
//! (streamed aggregates; see `examples/campaign_sweep.rs` for driving the
//! campaign API directly, with checkpoint/resume).
//!
//! ```sh
//! cargo run --release --example scaling_study            # compact sweep
//! STABCON_FULL=1 cargo run --release --example scaling_study   # paper scale
//! ```

use stabcon::analysis::figure1::{m_bins_table, two_bins_table, SweepCfg};

fn main() {
    let cfg = if std::env::var("STABCON_FULL").is_ok() {
        SweepCfg::paper()
    } else {
        SweepCfg {
            ns: vec![1 << 9, 1 << 10, 1 << 11, 1 << 12],
            trials: 25,
            seed: 0x5CA1E,
            ..Default::default()
        }
    };

    println!(
        "sweep: n ∈ {:?}, {} trials/point, {} threads\n",
        cfg.ns, cfg.trials, cfg.threads
    );
    println!("{}", two_bins_table(&cfg).to_text());
    print!("{}", m_bins_table(&cfg).to_text());
    println!();
    println!("Both \"mean\" columns should fit a + b·ln n with R² close to 1 —");
    println!("that is the paper's O(log n) (Theorems 1 and 10).");
}

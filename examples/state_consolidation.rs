//! A systems-flavoured scenario from the paper's introduction: the
//! *consolidation of replicated state*.
//!
//! A fleet of replicas comes back from a network partition holding different
//! version stamps. A few replicas are actively malicious (they keep flipping
//! their reported version), and the fleet is anonymous — replicas only know
//! "some other replica", not stable identities. Messages are real: every
//! round a replica may answer only O(log n) version queries; extra queries
//! are dropped, with the *adversary choosing which* to drop.
//!
//! The median rule consolidates the fleet onto a single proposed version
//! regardless, in a logarithmic number of rounds.
//!
//! ```sh
//! cargo run --release --example state_consolidation
//! ```

use std::sync::Arc;

use stabcon::core::engine::{DropSpec, MessageConfig, OnMissing};
use stabcon::prelude::*;

fn main() {
    let n = 4096usize;

    // Post-partition state: five surviving version stamps with skewed
    // popularity (one partition was much larger), plus stragglers.
    let versions = [1700u32, 1712, 1713, 1720, 1999];
    let weights = [45usize, 25, 15, 10, 5];
    let mut state = Vec::with_capacity(n);
    for (v, w) in versions.iter().zip(weights) {
        state.extend(std::iter::repeat_n(*v, n * w / 100));
    }
    state.resize(n, versions[0]);

    let byzantine = ((n as f64).sqrt() / 2.0) as u64;
    let cfg = MessageConfig {
        cap_mult: 2,
        drop: DropSpec::StarveFirstK { k: 128 }, // adversary starves 128 replicas
        on_missing: OnMissing::KeepOwn,
        ..MessageConfig::default()
    };

    let spec = SimSpec::new(n)
        .init(InitialCondition::Custom(Arc::new(state)))
        .adversary(AdversarySpec::Random, byzantine)
        .engine(EngineSpec::Message(cfg))
        .record_trajectory(true);

    let result = spec.run_seeded(0xC0DE);

    println!("replicas                  : {n}");
    println!("byzantine budget per round: {byzantine}");
    println!(
        "inbox cap                 : 2·⌈log₂ n⌉ = {} answers/round",
        2 * 12
    );
    println!();
    for obs in result.trajectory.as_deref().unwrap_or(&[]) {
        println!(
            "  round {:>3}: {:>2} distinct versions, leader v{} held by {:>5.1}%",
            obs.round,
            obs.support,
            obs.plurality_value,
            obs.plurality_count as f64 / n as f64 * 100.0
        );
        if obs.round >= 12 && obs.support <= 2 {
            break;
        }
    }
    println!();
    match result.almost_stable_round.or(result.consensus_round) {
        Some(r) => println!(
            "fleet consolidated on version {} by round {r} (validity: {})",
            result.winner, result.winner_valid
        ),
        None => println!("fleet did not consolidate within the round budget"),
    }
    if let Some(net) = result.net_totals {
        println!(
            "network: {} requests, {} dropped by overloaded replicas ({:.2}%)",
            net.requests,
            net.dropped,
            net.dropped as f64 / net.requests.max(1) as f64 * 100.0
        );
    }
}

//! # stabcon — stabilizing consensus with the power of two choices
//!
//! A full reproduction of *"Stabilizing Consensus with the Power of Two
//! Choices"* (Doerr, Goldberg, Minder, Sauerwald, Scheideler; SPAA 2011):
//! the **median rule** and every substrate needed to measure it — simulation
//! engines, adversaries, a message-passing network model, statistics, and an
//! experiment harness that regenerates the paper's results table.
//!
//! This crate is a facade that re-exports the workspace members:
//!
//! * [`core`] (`stabcon-core`) — configurations, protocols (median rule and
//!   baselines), adversaries, and three interchangeable engines;
//! * [`net`] (`stabcon-net`) — the synchronous anonymous message-passing
//!   model with logarithmic inbox caps;
//! * [`analysis`] (`stabcon-analysis`) — parallel experiment sweeps,
//!   convergence statistics, scaling fits, paper-table generators;
//! * [`exp`] (`stabcon-exp`) — campaign orchestration: declarative grids,
//!   sharded execution, streaming aggregation, a checkpoint/resume JSONL
//!   result store, and the `stabcon` CLI (`stabcon campaign run/resume/
//!   report`);
//! * [`util`] (`stabcon-util`) — RNGs, random variates, statistics,
//!   probability bounds, Markov tools;
//! * [`par`] (`stabcon-par`) — the thread-pool / parallel-map executor.
//!
//! ## Quickstart
//!
//! ```
//! use stabcon::prelude::*;
//!
//! // 1024 processes, two initial opinions split 50/50, no adversary.
//! let spec = SimSpec::new(1024)
//!     .init(InitialCondition::TwoBins { left: 512 })
//!     .max_rounds(10_000);
//! let result = spec.run_seeded(42);
//! assert!(result.consensus_round.is_some(), "median rule must converge");
//! ```

pub use stabcon_analysis as analysis;
pub use stabcon_core as core;
pub use stabcon_exp as exp;
pub use stabcon_net as net;
pub use stabcon_par as par;
pub use stabcon_util as util;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use stabcon_analysis::prelude::*;
    pub use stabcon_core::prelude::*;
}

//! End-to-end adversarial behaviour: the paper's threat model, measured.

use stabcon::prelude::*;

fn sqrt_half(n: usize) -> u64 {
    (((n as f64).sqrt() / 2.0) as u64).max(1)
}

#[test]
fn sub_threshold_balancer_cannot_stop_stabilization() {
    let n = 4096usize;
    let spec = SimSpec::new(n)
        .init(InitialCondition::TwoBins { left: n / 2 })
        .adversary(AdversarySpec::Balancer, sqrt_half(n))
        .max_rounds(3000);
    let mut hits = 0;
    for s in 0..10u64 {
        if spec.run_seeded(s).almost_stable_round.is_some() {
            hits += 1;
        }
    }
    assert!(
        hits >= 8,
        "balancer below threshold stopped {}/10 runs",
        10 - hits
    );
}

#[test]
fn over_threshold_balancer_stalls() {
    // T = 4√n: the balancer holds the tie for far longer than O(log n).
    let n = 4096usize;
    let t = 4 * (n as f64).sqrt() as u64;
    let lg = (n as f64).log2().ceil() as u64;
    let spec = SimSpec::new(n)
        .init(InitialCondition::TwoBins { left: n / 2 })
        .adversary(AdversarySpec::Balancer, t)
        .max_rounds(40 * lg);
    let mut hits = 0;
    for s in 0..6u64 {
        if spec.run_seeded(s).almost_stable_round.is_some() {
            hits += 1;
        }
    }
    assert_eq!(hits, 0, "over-budget balancer should stall all runs");
}

#[test]
fn min_rule_destabilized_median_not() {
    let n = 1024usize;
    let t = sqrt_half(n);
    let revive_at = 150u64;
    let horizon = revive_at + 400;

    let run = |p: ProtocolSpec| {
        SimSpec::new(n)
            .init(InitialCondition::TwoBins { left: t as usize })
            .protocol(p)
            .adversary(AdversarySpec::Reviver { revive_at }, t)
            .max_rounds(horizon)
            .full_horizon(true)
            .record_trajectory(true)
            .run_seeded(99)
    };

    let median = run(ProtocolSpec::Median);
    let min = run(ProtocolSpec::Min);

    let last_unsettled = |r: &stabcon::core::runner::RunResult| {
        r.trajectory
            .as_ref()
            .expect("trajectory")
            .iter()
            .filter(|o| o.support > 1)
            .map(|o| o.round)
            .max()
            .unwrap_or(0)
    };

    let median_last = last_unsettled(&median);
    let min_last = last_unsettled(&min);
    assert!(
        median_last < revive_at,
        "median should settle before the revival and stay settled (last unsettled: {median_last})"
    );
    assert!(
        min_last >= revive_at,
        "min rule must be destabilized by the revival (last unsettled: {min_last})"
    );
    // And the min rule ends up on the revived (smaller) value. Note the
    // latched `winner` field still shows the pre-revival value — the
    // detector was fooled, which is exactly the §1.1 point — so check the
    // final state.
    let final_plurality = min
        .trajectory
        .as_ref()
        .expect("trajectory")
        .last()
        .expect("nonempty")
        .plurality_value;
    assert_eq!(final_plurality, 0, "revived minimum must take over");
}

#[test]
fn adversary_budget_is_actually_bounded() {
    // With T = 0 an "adversary" must change nothing: identical to no
    // adversary.
    let n = 1024usize;
    let base = SimSpec::new(n).init(InitialCondition::UniformRandom { m: 5 });
    let clean = base.clone().run_seeded(7);
    let zero_budget = base
        .clone()
        .adversary(AdversarySpec::MedianPusher, 0)
        .run_seeded(7);
    assert_eq!(clean.consensus_round, zero_budget.consensus_round);
    assert_eq!(clean.winner, zero_budget.winner);
}

#[test]
fn median_pusher_slows_but_does_not_stop() {
    let n = 4096usize;
    let t = sqrt_half(n);
    let base = SimSpec::new(n).init(InitialCondition::UniformRandom { m: 9 });
    let clean = base.clone().run_seeded(3);
    let attacked = base
        .clone()
        .adversary(AdversarySpec::MedianPusher, t)
        .max_rounds(4000)
        .run_seeded(3);
    assert!(clean.consensus_round.is_some());
    assert!(
        attacked.almost_stable_round.is_some(),
        "median pusher with √n/2 budget must not prevent almost-stability"
    );
}

#[test]
fn random_adversary_keeps_disagreement_o_of_t() {
    let n = 4096usize;
    let t = sqrt_half(n);
    let spec = SimSpec::new(n)
        .init(InitialCondition::TwoBins { left: n / 2 })
        .adversary(AdversarySpec::Random, t)
        .max_rounds(600)
        .full_horizon(true);
    let r = spec.run_seeded(21);
    let hit = r.almost_stable_round.expect("stabilizes");
    let max_dis = r.max_disagreement_after_stable.expect("tracked");
    assert!(
        max_dis <= 8 * t,
        "post-stability disagreement {max_dis} ≫ O(T) with T = {t} (hit at {hit})"
    );
}

#[test]
fn winner_always_from_initial_set_under_attack() {
    for (i, adv) in [
        AdversarySpec::Random,
        AdversarySpec::Balancer,
        AdversarySpec::MedianPusher,
    ]
    .into_iter()
    .enumerate()
    {
        let n = 1024usize;
        let spec = SimSpec::new(n)
            .init(InitialCondition::UniformRandom { m: 6 })
            .adversary(adv, sqrt_half(n))
            .max_rounds(2000);
        let r = spec.run_seeded(500 + i as u64);
        assert!(r.winner_valid, "adversary #{i} produced invalid winner");
        assert!(r.winner < 6);
    }
}

//! End-to-end convergence across all three engines.

use stabcon::core::engine::{EngineSpec, MessageConfig};
use stabcon::core::histogram::Histogram;
use stabcon::core::runner::HistSpec;
use stabcon::prelude::*;

#[test]
fn all_engines_reach_consensus_on_two_bins() {
    let n = 2048usize;
    let engines = [
        EngineSpec::DenseSeq,
        EngineSpec::DensePar { threads: 4 },
        EngineSpec::Message(MessageConfig::default()),
    ];
    for engine in engines {
        let spec = SimSpec::new(n)
            .init(InitialCondition::TwoBins { left: n / 2 })
            .engine(engine);
        let r = spec.run_seeded(101);
        assert!(
            r.consensus_round.is_some(),
            "engine {} failed to converge",
            engine.label()
        );
        assert!(r.winner_valid);
        assert!(r.winner <= 1);
    }
}

#[test]
fn dense_engines_agree_exactly() {
    // Sequential and parallel dense engines must produce identical runs.
    for seed in [1u64, 2, 3] {
        let base = SimSpec::new(4096).init(InitialCondition::UniformRandom { m: 7 });
        let a = base.clone().engine(EngineSpec::DenseSeq).run_seeded(seed);
        let b = base
            .clone()
            .engine(EngineSpec::DensePar { threads: 8 })
            .run_seeded(seed);
        assert_eq!(a.consensus_round, b.consensus_round, "seed {seed}");
        assert_eq!(a.winner, b.winner, "seed {seed}");
        assert_eq!(a.rounds_executed, b.rounds_executed, "seed {seed}");
    }
}

#[test]
fn histogram_engine_matches_dense_statistically() {
    // Same workload, two engines: convergence-time distributions must be
    // close. (They are different samplings of the same Markov chain.)
    let n = 1 << 12;
    let trials = 40u64;
    let dense_spec = SimSpec::new(n).init(InitialCondition::MBinsEqual { m: 4 });
    let mut dense_times = Vec::new();
    for s in 0..trials {
        dense_times.push(
            dense_spec
                .run_seeded(1000 + s)
                .consensus_round
                .expect("dense converges") as f64,
        );
    }
    let hist0 = Histogram::new(&[
        (0, (n / 4) as u64),
        (1, (n / 4) as u64),
        (2, (n / 4) as u64),
        (3, (n / 4) as u64),
    ]);
    let hist_spec = HistSpec::new(hist0);
    let mut hist_times = Vec::new();
    for s in 0..trials {
        hist_times.push(
            hist_spec
                .run_seeded(2000 + s)
                .consensus_round
                .expect("hist converges") as f64,
        );
    }
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    let dm = mean(&dense_times);
    let hm = mean(&hist_times);
    assert!(
        (dm - hm).abs() < 0.35 * dm.max(hm) + 2.0,
        "dense mean {dm} vs histogram mean {hm} diverge"
    );
}

#[test]
fn worst_case_all_distinct_scales_logarithmically() {
    // Theorem 1 sanity: mean convergence time grows by roughly a constant
    // number of rounds per doubling, not multiplicatively.
    let mut means = Vec::new();
    for n in [512usize, 2048, 8192] {
        let spec = SimSpec::new(n); // all-distinct default
        let mut total = 0.0;
        let trials = 8;
        for s in 0..trials {
            total += spec.run_seeded(s).consensus_round.expect("converges") as f64;
        }
        means.push(total / trials as f64);
    }
    let growth_1 = means[1] - means[0];
    let growth_2 = means[2] - means[1];
    // 16× population growth: each 4× step should add a bounded number of
    // rounds (log-like), not scale the time by anything near 4×.
    assert!(means[2] < 2.0 * means[0], "not logarithmic: {means:?}");
    assert!(
        growth_1.abs() < means[0] && growth_2.abs() < means[0],
        "per-doubling increments too large: {means:?}"
    );
}

#[test]
fn median_rule_validity_is_universal() {
    // Any initial condition, any seed: the winner is an initial value.
    for (i, init) in [
        InitialCondition::AllDistinct,
        InitialCondition::TwoBins { left: 17 },
        InitialCondition::MBinsEqual { m: 6 },
        InitialCondition::UniformRandom { m: 11 },
    ]
    .into_iter()
    .enumerate()
    {
        let spec = SimSpec::new(1024).init(init);
        let r = spec.run_seeded(300 + i as u64);
        assert!(r.winner_valid, "init #{i} produced invalid winner");
    }
}

#[test]
fn huge_population_histogram_run() {
    // 2^44 balls — only possible with the histogram engine.
    let big = 1u64 << 44;
    let h = Histogram::new(&[(10, big), (20, big), (30, big / 2)]);
    let r = HistSpec::new(h).run_seeded(5);
    assert!(r.consensus_round.is_some());
    assert!([10, 20, 30].contains(&r.winner));
}

#[test]
fn single_process_is_trivially_consensus() {
    let spec = SimSpec::new(1);
    let r = spec.run_seeded(1);
    assert_eq!(r.consensus_round, Some(0));
    // The stability window (default 8) keeps the run alive a few rounds to
    // confirm persistence, but no longer than the window itself.
    assert!(r.rounds_executed <= 8, "ran {} rounds", r.rounds_executed);
}

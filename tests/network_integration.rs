//! The message-level communication model, end-to-end.

use stabcon::core::engine::{DropSpec, EngineSpec, MessageConfig, OnMissing};
use stabcon::prelude::*;

fn message_spec(n: usize, cfg: MessageConfig) -> SimSpec {
    SimSpec::new(n)
        .init(InitialCondition::TwoBins { left: n / 2 })
        .engine(EngineSpec::Message(cfg))
}

#[test]
fn converges_under_every_drop_policy() {
    let n = 1024usize;
    for drop in [
        DropSpec::Random,
        DropSpec::KeepFirst,
        DropSpec::StarveFirstK { k: n / 8 },
    ] {
        let cfg = MessageConfig {
            cap_mult: 2,
            drop,
            on_missing: OnMissing::KeepOwn,
            ..MessageConfig::default()
        };
        let r = message_spec(n, cfg).run_seeded(11);
        assert!(
            r.consensus_round.is_some(),
            "drop policy {:?} prevented consensus",
            drop
        );
    }
}

#[test]
fn tight_caps_slow_but_do_not_break() {
    let n = 1024usize;
    let mean_rounds = |cap_mult: usize| -> f64 {
        let cfg = MessageConfig {
            cap_mult,
            drop: DropSpec::Random,
            on_missing: OnMissing::KeepOwn,
            ..MessageConfig::default()
        };
        let mut total = 0.0;
        let trials = 8;
        for s in 0..trials {
            total += message_spec(n, cfg)
                .max_rounds(5000)
                .run_seeded(s)
                .consensus_round
                .expect("converges") as f64;
        }
        total / trials as f64
    };
    let loose = mean_rounds(3);
    let tight = mean_rounds(1);
    assert!(
        tight >= loose * 0.8,
        "tight caps should not be faster: tight {tight} loose {loose}"
    );
}

#[test]
fn metrics_are_conserved() {
    let n = 512usize;
    let cfg = MessageConfig {
        cap_mult: 1,
        drop: DropSpec::Random,
        on_missing: OnMissing::KeepOwn,
        ..MessageConfig::default()
    };
    let r = message_spec(n, cfg).run_seeded(3);
    let m = r.net_totals.expect("metrics");
    assert_eq!(m.delivered + m.dropped, m.requests);
    // 2 requests per ball per round.
    assert_eq!(
        m.requests + m.self_requests,
        2 * n as u64 * r.rounds_executed
    );
}

#[test]
fn message_engine_is_deterministic() {
    let n = 512usize;
    let cfg = MessageConfig::default();
    let a = message_spec(n, cfg).run_seeded(9);
    let b = message_spec(n, cfg).run_seeded(9);
    assert_eq!(a.consensus_round, b.consensus_round);
    assert_eq!(a.winner, b.winner);
    let (am, bm) = (a.net_totals.expect("a"), b.net_totals.expect("b"));
    assert_eq!(am.requests, bm.requests);
    assert_eq!(am.dropped, bm.dropped);
}

#[test]
fn starved_minority_still_joins_consensus() {
    // Starving n/8 processes' requests delays them but consensus must
    // still be full (the starved ones are still *sampled by others* and
    // keep their own medians via self-bypass).
    let n = 1024usize;
    let cfg = MessageConfig {
        cap_mult: 1,
        drop: DropSpec::StarveFirstK { k: n / 8 },
        on_missing: OnMissing::KeepOwn,
        ..MessageConfig::default()
    };
    let r = message_spec(n, cfg).max_rounds(5000).run_seeded(17);
    assert_eq!(r.final_support, 1, "starved processes never agreed");
    assert_eq!(r.final_disagreement, 0);
}

#[test]
fn adopt_and_keep_own_both_valid() {
    let n = 512usize;
    for on_missing in [OnMissing::KeepOwn, OnMissing::Adopt] {
        let cfg = MessageConfig {
            cap_mult: 1,
            drop: DropSpec::Random,
            on_missing,
            ..MessageConfig::default()
        };
        let r = message_spec(n, cfg).max_rounds(5000).run_seeded(23);
        assert!(r.consensus_round.is_some(), "{on_missing:?} failed");
        assert!(r.winner_valid);
    }
}

//! Cross-crate property-based tests (proptest).
//!
//! These pin the algebraic facts the paper's proofs rest on, on random
//! inputs: the median-rule kernel (Lemma 17's commutation), budget and
//! validity enforcement, engine determinism, and distribution-law
//! consistency between the dense and histogram engines.

use proptest::prelude::*;
use stabcon::core::adversary::{Adversary, Corruptor, RandomCorruptor};
use stabcon::core::engine::{dense, hist};
use stabcon::core::fineness::{is_finer, verify_coupling};
use stabcon::core::histogram::Histogram;
use stabcon::core::protocol::MedianRule;
use stabcon::prelude::*;
use stabcon::util::rng::Xoshiro256pp;

fn small_values() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..16, 2..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // --- median algebra ----------------------------------------------------

    #[test]
    fn median3_is_permutation_invariant(a in 0u32..1000, b in 0u32..1000, c in 0u32..1000) {
        let m = median3(a, b, c);
        prop_assert_eq!(m, median3(a, c, b));
        prop_assert_eq!(m, median3(b, a, c));
        prop_assert_eq!(m, median3(b, c, a));
        prop_assert_eq!(m, median3(c, a, b));
        prop_assert_eq!(m, median3(c, b, a));
    }

    #[test]
    fn median3_returns_one_of_its_inputs(a in any::<u32>(), b in any::<u32>(), c in any::<u32>()) {
        let m = median3(a, b, c);
        prop_assert!(m == a || m == b || m == c);
    }

    #[test]
    fn median3_is_between_min_and_max(a in any::<u32>(), b in any::<u32>(), c in any::<u32>()) {
        let m = median3(a, b, c);
        prop_assert!(m >= a.min(b).min(c));
        prop_assert!(m <= a.max(b).max(c));
    }

    #[test]
    fn median3_commutes_with_monotone_maps(a in 0u32..500, b in 0u32..500, c in 0u32..500, div in 1u32..7, cap in 0u32..500) {
        // The Lemma 17 kernel, for two monotone map families.
        let f = |v: u32| v / div;
        prop_assert_eq!(median3(f(a), f(b), f(c)), f(median3(a, b, c)));
        let g = |v: u32| v.min(cap);
        prop_assert_eq!(median3(g(a), g(b), g(c)), g(median3(a, b, c)));
    }

    #[test]
    fn median3_is_monotone_in_each_argument(a in 0u32..100, b in 0u32..100, c in 0u32..100, bump in 1u32..50) {
        prop_assert!(median3(a + bump, b, c) >= median3(a, b, c));
        prop_assert!(median3(a, b + bump, c) >= median3(a, b, c));
        prop_assert!(median3(a, b, c + bump) >= median3(a, b, c));
    }

    // --- engines -----------------------------------------------------------

    #[test]
    fn dense_engine_seq_equals_par(values in small_values(), seed in any::<u64>(), round in 0u64..8) {
        let mut seq = vec![0u32; values.len()];
        let mut par = vec![0u32; values.len()];
        dense::step_seq(&values, &mut seq, &MedianRule, seed, round);
        dense::step_par(4, &values, &mut par, &MedianRule, seed, round);
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn dense_engine_never_invents_values(values in small_values(), seed in any::<u64>()) {
        let mut new = vec![0u32; values.len()];
        dense::step_seq(&values, &mut new, &MedianRule, seed, 0);
        for v in &new {
            prop_assert!(values.contains(v), "value {} invented", v);
        }
    }

    #[test]
    fn hist_step_preserves_population(loads in prop::collection::vec(1u64..10_000, 1..12), seed in any::<u64>()) {
        let pairs: Vec<(u32, u64)> = loads.iter().enumerate().map(|(v, &c)| (v as u32, c)).collect();
        let h = Histogram::new(&pairs);
        let mut rng = Xoshiro256pp::seed(seed);
        let next = hist::step(&h, &mut rng);
        prop_assert_eq!(next.n(), h.n());
    }

    #[test]
    fn hist_destination_law_is_distribution(loads in prop::collection::vec(1u64..1000, 2..10)) {
        let pairs: Vec<(u32, u64)> = loads.iter().enumerate().map(|(v, &c)| (v as u32, c)).collect();
        let h = Histogram::new(&pairs);
        let cdf = h.cdf();
        for b in 0..pairs.len() {
            let law = hist::destination_law(&cdf, b);
            let total: f64 = law.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9, "bin {} total {}", b, total);
            for &p in &law {
                prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
            }
        }
    }

    // --- adversary enforcement ----------------------------------------------

    #[test]
    fn corruptor_never_exceeds_budget(values in small_values(), budget in 0u64..20, seed in any::<u64>()) {
        let set = ValueSet::from_values(&values);
        let mut state = values.clone();
        let mut rng = Xoshiro256pp::seed(seed);
        let mut adv = RandomCorruptor;
        {
            let mut c = Corruptor::new(&mut state, &set, budget);
            adv.corrupt(0, &mut c, &mut rng);
        }
        let changed = state.iter().zip(&values).filter(|(a, b)| a != b).count() as u64;
        prop_assert!(changed <= budget, "changed {} > budget {}", changed, budget);
        for v in &state {
            prop_assert!(set.contains(*v));
        }
    }

    // --- fineness ------------------------------------------------------------

    #[test]
    fn coupling_invariant_random_configs(raw in prop::collection::vec(0u32..12, 8..64), div in 1u32..5, seed in any::<u64>()) {
        let report = verify_coupling(&raw, &|v| v / div, 300, seed);
        prop_assert!(report.invariant_held);
        if let (Some(f), Some(c)) = (report.fine_consensus, report.coarse_consensus) {
            prop_assert!(c <= f, "coarse {} slower than fine {}", c, f);
        }
    }

    #[test]
    fn grouping_loads_is_finer(loads in prop::collection::vec(1u64..50, 1..12), cut in 0usize..12) {
        // Any consecutive two-group merge of a load sequence is coarser.
        let cut = cut.min(loads.len());
        if cut > 0 && cut < loads.len() {
            let left: u64 = loads[..cut].iter().sum();
            let right: u64 = loads[cut..].iter().sum();
            prop_assert!(is_finer(&loads, &[left, right]));
        }
        let total: u64 = loads.iter().sum();
        prop_assert!(is_finer(&loads, &[total]));
        prop_assert!(is_finer(&loads, &loads));
    }

    // --- protocols ----------------------------------------------------------

    #[test]
    fn protocols_respect_declared_sample_counts(own in 0u32..100, s in prop::collection::vec(0u32..100, 8)) {
        for spec in [ProtocolSpec::Median, ProtocolSpec::Min, ProtocolSpec::Max,
                     ProtocolSpec::Mean, ProtocolSpec::Majority, ProtocolSpec::Voter,
                     ProtocolSpec::KMedian(5)] {
            let p = spec.build();
            let k = p.samples();
            let out = p.combine(own, &s[..k]);
            if p.validity_preserving() {
                prop_assert!(out == own || s[..k].contains(&out),
                    "{} invented {} from own={} samples={:?}", p.name(), out, own, &s[..k]);
            }
        }
    }

    #[test]
    fn run_results_are_seed_deterministic(seed in any::<u64>()) {
        let spec = SimSpec::new(128).init(InitialCondition::UniformRandom { m: 4 });
        let a = spec.run_seeded(seed);
        let b = spec.run_seeded(seed);
        prop_assert_eq!(a.consensus_round, b.consensus_round);
        prop_assert_eq!(a.winner, b.winner);
    }
}

// --- one-step law agreement (statistical, fixed seeds; not proptest) --------

#[test]
fn dense_and_histogram_one_step_means_agree() {
    // From a fixed 3-bin config, the expected next loads per the histogram
    // law must match dense-engine empirical means.
    let n = 3000usize;
    let loads = [1000u64, 1200, 800];
    let h = Histogram::new(&[(0, loads[0]), (1, loads[1]), (2, loads[2])]);
    let cdf = h.cdf();
    // Expected load of bin c next round = Σ_b load_b · law_b[c].
    let mut expected = [0.0f64; 3];
    for (b, &load) in loads.iter().enumerate() {
        let law = hist::destination_law(&cdf, b);
        for (c, e) in expected.iter_mut().enumerate() {
            *e += load as f64 * law[c];
        }
    }
    // Dense empirical means.
    let mut old = Vec::with_capacity(n);
    for (v, &c) in loads.iter().enumerate() {
        old.extend(std::iter::repeat_n(v as u32, c as usize));
    }
    let trials = 300u64;
    let mut sums = [0.0f64; 3];
    let mut new = vec![0u32; n];
    for t in 0..trials {
        dense::step_seq(&old, &mut new, &MedianRule, 0xABCD + t, 0);
        for &v in &new {
            sums[v as usize] += 1.0;
        }
    }
    for c in 0..3 {
        let mean = sums[c] / trials as f64;
        // Per-trial sd of a bin load is ≤ √(n·p(1−p)) ≤ ~27; se over 300
        // trials ≈ 1.6. Allow 6σ plus slack for law-vs-sample coupling.
        assert!(
            (mean - expected[c]).abs() < 12.0,
            "bin {c}: dense mean {mean:.1} vs histogram expectation {:.1}",
            expected[c]
        );
    }
}

//! Offline stand-in for `criterion`.
//!
//! Implements the subset of criterion's API the workspace's two
//! criterion-based bench targets use: groups, `bench_with_input` /
//! `bench_function`, throughput annotation, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a simple calibrated
//! median-of-batches timer printed to stdout — adequate for relative
//! comparisons, with none of criterion's statistical machinery.

#![forbid(unsafe_code)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevent the compiler from optimizing a benchmarked value away.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// The benchmark context handed to registered bench functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmark a single function outside a group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, |b| f(b));
        group.finish();
        self
    }
}

/// A group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measurement samples (minimum 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotate per-iteration throughput for reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark `f` with a borrowed input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    /// Benchmark `f` with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Finish the group (reporting already happened per benchmark).
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        let per_iter = bencher.median_iter_time();
        let label = if self.name.is_empty() {
            id.id.clone()
        } else {
            format!("{}/{}", self.name, id.id)
        };
        match self.throughput {
            Some(Throughput::Elements(elems)) if per_iter > 0.0 => {
                let rate = elems as f64 / per_iter;
                println!(
                    "bench {label:<40} {:>12.1} ns/iter  {rate:>14.0} elem/s",
                    per_iter * 1e9
                );
            }
            Some(Throughput::Bytes(bytes)) if per_iter > 0.0 => {
                let rate = bytes as f64 / per_iter;
                println!(
                    "bench {label:<40} {:>12.1} ns/iter  {rate:>14.0} B/s",
                    per_iter * 1e9
                );
            }
            _ => {
                println!("bench {label:<40} {:>12.1} ns/iter", per_iter * 1e9);
            }
        }
    }
}

/// Runs the closure under timing.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<f64>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self {
            sample_size,
            samples: Vec::new(),
        }
    }

    /// Measure `routine`: warm up, pick a batch size targeting ~10ms per
    /// sample, then record `sample_size` batch timings.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up and calibration: find iterations per ~10ms batch.
        let calib_start = Instant::now();
        let mut calib_iters = 0u64;
        while calib_start.elapsed() < Duration::from_millis(20) && calib_iters < 1_000_000 {
            std_black_box(routine());
            calib_iters += 1;
        }
        let per_iter = calib_start.elapsed().as_secs_f64() / calib_iters.max(1) as f64;
        let batch = ((0.01 / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_secs_f64() / batch as f64);
        }
    }

    fn median_iter_time(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        sorted[sorted.len() / 2]
    }
}

/// Define a benchmark group function (mirrors criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main()` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group.sample_size(2);
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}

//! An unbounded multi-producer multi-consumer channel.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    not_empty: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

/// Error returned by [`Sender::send`] when every receiver is gone.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Like real crossbeam: don't require T: Debug.
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty, disconnected channel")
    }
}

/// The sending half; cloneable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; cloneable (multi-consumer).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        not_empty: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Push a message; fails only if all receivers are dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if self.shared.receivers.load(Ordering::SeqCst) == 0 {
            return Err(SendError(value));
        }
        let mut queue = self
            .shared
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        queue.push_back(value);
        drop(queue);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::SeqCst);
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last sender gone: wake all blocked receivers so they observe
            // disconnection.
            let _guard = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Pop a message, blocking while the channel is empty and senders
    /// remain.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self
            .shared
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(value) = queue.pop_front() {
                return Ok(value);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvError);
            }
            queue = self
                .shared
                .not_empty
                .wait(queue)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking pop.
    pub fn try_recv(&self) -> Option<T> {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_front()
    }

    /// Blocking iterator over messages until disconnection.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::SeqCst);
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.receivers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Borrowing message iterator.
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;
    fn into_iter(self) -> IntoIter<T> {
        IntoIter { receiver: self }
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

/// Owning message iterator.
pub struct IntoIter<T> {
    receiver: Receiver<T>,
}

impl<T> Iterator for IntoIter<T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_single_thread() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).expect("send");
        }
        drop(tx);
        let got: Vec<i32> = rx.into_iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errors_after_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_without_receivers() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn multi_consumer_drains_everything() {
        let (tx, rx) = unbounded();
        let n = 1000u64;
        for i in 0..n {
            tx.send(i).expect("send");
        }
        drop(tx);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rx = rx.clone();
            handles.push(std::thread::spawn(move || {
                let mut count = 0u64;
                while rx.recv().is_ok() {
                    count += 1;
                }
                count
            }));
        }
        drop(rx);
        let total: u64 = handles.into_iter().map(|h| h.join().expect("join")).sum();
        assert_eq!(total, n);
    }
}

//! Work-stealing-shaped deques (mutex-based stand-in).
//!
//! Same API shape as `crossbeam-deque`: a global [`Injector`], per-worker
//! [`Worker`] queues, and [`Stealer`] handles. The queues here are plain
//! locked `VecDeque`s — correct and plenty fast for the coarse-grained jobs
//! `stabcon-par` schedules.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};

/// Outcome of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// A job was stolen.
    Success(T),
    /// The queue was empty.
    Empty,
    /// The attempt lost a race and should be retried (never produced by this
    /// stand-in, but part of the API shape callers match on).
    Retry,
}

/// Global FIFO injector queue.
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Injector<T> {
    /// Create an empty injector.
    pub fn new() -> Self {
        Self {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    /// Push a job.
    pub fn push(&self, job: T) {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(job);
    }

    /// Whether the injector is currently empty.
    pub fn is_empty(&self) -> bool {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_empty()
    }

    /// Move a batch of jobs into `dest`'s local queue and pop one of them.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut queue = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(first) = queue.pop_front() else {
            return Steal::Empty;
        };
        // Take up to half the remaining jobs (mirrors crossbeam's batching).
        let batch = queue.len() / 2;
        if batch > 0 {
            let mut local = dest.queue.lock().unwrap_or_else(PoisonError::into_inner);
            for _ in 0..batch {
                match queue.pop_front() {
                    Some(job) => local.push_back(job),
                    None => break,
                }
            }
        }
        Steal::Success(first)
    }
}

/// A worker's local FIFO queue.
pub struct Worker<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    /// Create an empty FIFO worker queue.
    pub fn new_fifo() -> Self {
        Self {
            queue: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Push a job onto the local queue.
    pub fn push(&self, job: T) {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(job);
    }

    /// Pop the next local job.
    pub fn pop(&self) -> Option<T> {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_front()
    }

    /// A stealer handle onto this queue.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }
}

/// Handle for stealing from another worker's queue.
pub struct Stealer<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Self {
            queue: Arc::clone(&self.queue),
        }
    }
}

impl<T> Stealer<T> {
    /// Steal one job from the victim's queue.
    pub fn steal(&self) -> Steal<T> {
        match self
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_front()
        {
            Some(job) => Steal::Success(job),
            None => Steal::Empty,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_fifo_order() {
        let w = Worker::new_fifo();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn injector_batch_pop_moves_work() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let w = Worker::new_fifo();
        match inj.steal_batch_and_pop(&w) {
            Steal::Success(first) => assert_eq!(first, 0),
            other => panic!("unexpected: {other:?}"),
        }
        // Some of the remainder moved to the local queue.
        assert!(w.pop().is_some());
    }

    #[test]
    fn stealer_takes_from_worker() {
        let w = Worker::new_fifo();
        w.push(7);
        let s = w.stealer();
        assert_eq!(s.steal(), Steal::Success(7));
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn empty_injector_reports_empty() {
        let inj: Injector<u8> = Injector::new();
        let w = Worker::new_fifo();
        assert!(matches!(inj.steal_batch_and_pop(&w), Steal::Empty));
        assert!(inj.is_empty());
    }
}

//! Offline stand-in for the `crossbeam` facade crate.
//!
//! Provides the subset of crossbeam's API used by `stabcon-par`, built on
//! `std::sync` primitives: work-stealing-shaped deques ([`deque`]), an
//! unbounded MPMC channel ([`channel`]), and scoped threads ([`thread`]).
//! The implementations favour simplicity over lock-free performance — the
//! workspace only pushes coarse chunks of work through them, so contention
//! is negligible compared to the per-chunk compute.

#![forbid(unsafe_code)]

pub mod channel;
pub mod deque;
pub mod thread;

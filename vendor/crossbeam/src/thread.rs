//! Scoped threads with crossbeam's closure signature, over `std::thread`.

use std::any::Any;

/// A scope handle passed to [`scope`] and to each spawned closure.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives the scope (crossbeam's
    /// signature) so nested spawns are possible.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Run `f` with a scope in which borrowed-data threads can be spawned; all
/// threads are joined before `scope` returns.
///
/// A panic in an unjoined spawned thread propagates as a panic here (std
/// semantics), so the `Err` variant — kept for crossbeam API compatibility —
/// is never actually produced.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn spawned_threads_see_borrowed_data() {
        let data = [1u64, 2, 3, 4];
        let sum = AtomicUsize::new(0);
        scope(|s| {
            for chunk in data.chunks(2) {
                let sum = &sum;
                s.spawn(move |_| {
                    let partial: u64 = chunk.iter().sum();
                    sum.fetch_add(partial as usize, Ordering::Relaxed);
                });
            }
        })
        .expect("scope");
        assert_eq!(sum.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            let counter = &counter;
            s.spawn(move |s2| {
                s2.spawn(move |_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .expect("scope");
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }
}

//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API (the
//! subset used by `stabcon-par`): [`Mutex::lock`] returning a guard directly
//! and [`Condvar::wait`] / [`Condvar::wait_for`] taking `&mut` guards.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
///
/// Holds the inner std guard in an `Option` so a condvar wait can take it
/// out and put the re-acquired guard back without unsafe code.
pub struct MutexGuard<'a, T> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = self.0.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { inner: Some(inner) }
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a timed condvar wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable operating on [`MutexGuard`]s in place.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Block until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_data() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            *started = true;
            cvar.notify_one();
        });
        let (lock, cvar) = &*pair;
        let mut started = lock.lock();
        while !*started {
            cvar.wait(&mut started);
        }
        handle.join().expect("thread");
        assert!(*started);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(1));
        assert!(r.timed_out());
    }
}

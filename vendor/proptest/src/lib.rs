//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property tests
//! use: the [`proptest!`] macro, integer/float range strategies,
//! [`prelude::any`], `prop::collection::vec`, `prop_assert*` /
//! [`prop_assume!`], and [`test_runner::ProptestConfig`]. Differences from
//! real proptest: cases are generated from a fixed deterministic seed (per
//! test name), and failing inputs are reported but **not shrunk**.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// `prop::collection` etc., mirroring proptest's module layout.
pub mod collection {
    pub use crate::strategy::{vec, SizeRange, VecStrategy};
}

/// Mirrors `proptest::arbitrary`.
pub mod arbitrary {
    pub use crate::strategy::{any, Arbitrary};
}

/// The prelude: everything tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop` module alias (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Define property tests.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn name(a in 0u32..10, b in any::<u64>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expand each `fn` item inside [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                let __inputs = {
                    let mut __s = ::std::string::String::new();
                    $(
                        __s.push_str(concat!(stringify!($arg), " = "));
                        __s.push_str(&::std::format!("{:?}, ", &$arg));
                    )+
                    __s
                };
                let mut __case = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                };
                match __case() {
                    ::std::result::Result::Ok(()) => $crate::test_runner::CaseResult::Pass,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) =>
                        $crate::test_runner::CaseResult::Reject,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) =>
                        $crate::test_runner::CaseResult::Fail(
                            ::std::format!("{}\n\tinputs: {}", __msg, __inputs),
                        ),
                }
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Assert a condition inside a property test (fails the case, reporting the
/// generated inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("{} at {}:{}", ::std::format!($($fmt)+), file!(), line!()),
            ));
        }
    };
}

/// Assert two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Assert two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Skip the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        $crate::prop_assume!($cond)
    };
}

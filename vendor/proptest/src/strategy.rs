//! Value-generation strategies.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A source of random values for one property argument.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

// --- integer and float ranges ----------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                // span == 0 only when the range covers the full u64 domain.
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (self.start as u128 + rng.below(span) as u128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = end as u128 - start as u128;
                if span >= u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (start as u128 + rng.below(span as u64 + 1) as u128) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty => $u:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = end.wrapping_sub(start) as $u as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )+};
}

signed_range_strategy!(i32 => u32, i64 => u64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        // unit_f64 is in [0,1); stretch so the end is reachable.
        let u = rng.next_u64() % ((1u64 << 53) + 1);
        start + (u as f64 / (1u64 << 53) as f64) * (end - start)
    }
}

// --- any -------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// Generate a uniform value over the type's domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only (proptest's default also avoids NaN by default).
        rng.unit_f64() * 2e9 - 1e9
    }
}

/// Strategy for a full-domain [`Arbitrary`] value.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// --- collections -----------------------------------------------------------

/// Admissible length specifications for [`vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            min: exact,
            max: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.min + rng.below((self.size.max - self.size.min + 1) as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec(element, size)`: vectors with lengths drawn from
/// `size` (a `usize`, `Range<usize>`, or `RangeInclusive<usize>`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(3);
        for _ in 0..1000 {
            let v = (5u32..17).generate(&mut rng);
            assert!((5..17).contains(&v));
            let w = (0u64..u64::MAX).generate(&mut rng);
            assert!(w < u64::MAX);
            let f = (0.25f64..=0.75).generate(&mut rng);
            assert!((0.25..=0.75).contains(&f));
            let g = (-1e6f64..1e6).generate(&mut rng);
            assert!((-1e6..1e6).contains(&g));
        }
    }

    #[test]
    fn full_domain_inclusive_range() {
        let mut rng = TestRng::new(9);
        for _ in 0..100 {
            let _ = (0u64..=u64::MAX).generate(&mut rng);
        }
    }

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut rng = TestRng::new(4);
        let s = vec(0u32..10, 2..6);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
        let exact = vec(any::<u32>(), 8usize);
        assert_eq!(exact.generate(&mut rng).len(), 8);
    }

    #[test]
    fn signed_ranges() {
        let mut rng = TestRng::new(11);
        for _ in 0..500 {
            let v = (-10i32..10).generate(&mut rng);
            assert!((-10..10).contains(&v));
        }
    }
}

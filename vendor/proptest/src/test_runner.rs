//! Deterministic case runner and configuration.

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a property body did not complete successfully.
#[derive(Debug)]
pub enum TestCaseError {
    /// A `prop_assert*` failed; the message includes location and inputs.
    Fail(String),
    /// A `prop_assume!` precondition was not met; the case is skipped.
    Reject,
}

/// Outcome of one generated case, as reported by the macro expansion.
#[derive(Debug)]
pub enum CaseResult {
    /// Case passed.
    Pass,
    /// Case was skipped by `prop_assume!`.
    Reject,
    /// Case failed with the given message.
    Fail(String),
}

/// The RNG handed to strategies: SplitMix64 (deterministic per test name, so
/// failures are reproducible run to run).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit word (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `u64` in `[0, n)` (Lemire multiply-shift with rejection).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut low = m as u64;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn name_seed(name: &str) -> u64 {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Run `config.cases` random cases of `case`, panicking on the first
/// failure. Rejected cases (via `prop_assume!`) don't count toward the case
/// budget, up to a global cap to avoid livelock on impossible assumptions.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> CaseResult,
{
    let mut rng = TestRng::new(name_seed(name));
    let max_rejects = (config.cases as u64) * 16 + 256;
    let mut rejects = 0u64;
    let mut executed = 0u32;
    let mut case_index = 0u64;
    while executed < config.cases {
        // Each case draws from its own subsequence so a strategy consuming a
        // variable number of words cannot desynchronize later cases.
        let mut case_rng = TestRng::new(rng.next_u64() ^ case_index.wrapping_mul(0x9E37_79B9));
        case_index += 1;
        match case(&mut case_rng) {
            CaseResult::Pass => executed += 1,
            CaseResult::Reject => {
                rejects += 1;
                assert!(
                    rejects <= max_rejects,
                    "proptest '{name}': too many prop_assume! rejections ({rejects})"
                );
            }
            CaseResult::Fail(msg) => {
                panic!("proptest '{name}' failed at case {case_index}: {msg}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_is_in_range() {
        let mut rng = TestRng::new(1);
        for n in [1u64, 2, 7, 1 << 40] {
            for _ in 0..200 {
                assert!(rng.below(n) < n);
            }
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::new(name_seed("foo"));
        let mut b = TestRng::new(name_seed("foo"));
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic() {
        run_cases(&ProptestConfig::with_cases(4), "always_fails", |_| {
            CaseResult::Fail("nope".into())
        });
    }

    #[test]
    fn rejects_do_not_consume_cases() {
        let mut executed = 0;
        let mut toggles = 0u32;
        run_cases(&ProptestConfig::with_cases(8), "half_reject", |_| {
            toggles += 1;
            if toggles.is_multiple_of(2) {
                CaseResult::Reject
            } else {
                executed += 1;
                CaseResult::Pass
            }
        });
        assert_eq!(executed, 8);
    }
}

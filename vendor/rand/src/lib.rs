//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no access to crates.io, so
//! this vendored crate provides the (tiny) subset of the rand 0.8 API the
//! workspace actually uses: the [`RngCore`] / [`SeedableRng`] traits and the
//! [`Error`] type. All concrete generators live in `stabcon-util`.

#![forbid(unsafe_code)]

use std::fmt;

/// Error type reported by fallible RNG operations (never constructed by the
/// deterministic generators in this workspace, but part of the trait
/// surface).
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Create an error with a static description.
    pub fn new(msg: &'static str) -> Self {
        Self { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator: a source of random 32/64-bit
/// words. Object-safe, mirroring rand 0.8.
pub trait RngCore {
    /// Next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A generator seedable from a fixed-size byte seed or a `u64`.
pub trait SeedableRng: Sized {
    /// Seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` by expanding it with SplitMix64 (same
    /// expansion rand 0.8 uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }

    /// Construct by drawing a seed from another generator.
    fn from_rng<R: RngCore>(rng: &mut R) -> Result<Self, Error> {
        let mut seed = Self::Seed::default();
        rng.try_fill_bytes(seed.as_mut())?;
        Ok(Self::from_seed(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let len = chunk.len();
                chunk.copy_from_slice(&bytes[..len]);
            }
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    impl SeedableRng for Lcg {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            Lcg(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn dyn_object_safe() {
        let mut lcg = Lcg(1);
        let rng: &mut dyn RngCore = &mut lcg;
        let _ = rng.next_u64();
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        assert_eq!(Lcg::seed_from_u64(42).0, Lcg::seed_from_u64(42).0);
        assert_ne!(Lcg::seed_from_u64(42).0, Lcg::seed_from_u64(43).0);
    }
}
